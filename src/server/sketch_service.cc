#include "server/sketch_service.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <functional>
#include <sstream>
#include <utility>

#include "common/timer.h"
#include "parallel/sharded_sketch.h"
#include "server/blob_check.h"
#include "telemetry/metric_registry.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"

namespace sketch::server {

namespace {

constexpr double kEuler = 2.718281828459045;

std::vector<uint8_t> MakeError(ErrorCode code, const std::string& message) {
  ErrorResponse response;
  response.code = code;
  response.message = message;
  return EncodeError(response);
}

std::vector<uint8_t> MalformedPayload(Opcode opcode) {
  return MakeError(ErrorCode::kMalformedPayload,
                   std::string("malformed payload for ") + OpcodeName(opcode));
}

std::vector<uint8_t> NoSuchSketch(const std::string& name) {
  return MakeError(ErrorCode::kNoSuchSketch,
                   "no sketch named '" + name + "'");
}

/// Sum of |delta| over a batch: an upper bound on the L1 mass the batch
/// adds, tracked so Count-Min point queries can report their eps*||x||_1
/// error scale.
int64_t BatchL1(UpdateSpan updates) {
  int64_t l1 = 0;
  for (const StreamUpdate& u : updates) {
    l1 += u.delta < 0 ? -u.delta : u.delta;
  }
  return l1;
}

/// F2 estimate from a Count-Sketch's own counters: per row the sum of
/// squared counters is an unbiased F2 estimator; the median over rows
/// gives the usual high-probability bound. Used to scale the L2 error
/// bound sqrt(3 * F2 / width) reported with point estimates.
double EstimateF2FromCounters(const CountSketch& sketch) {
  std::vector<double> rows;
  rows.reserve(sketch.depth());
  for (uint64_t j = 0; j < sketch.depth(); ++j) {
    double sum = 0.0;
    for (uint64_t b = 0; b < sketch.width(); ++b) {
      const auto c = static_cast<double>(sketch.CounterAt(j, b));
      sum += c * c;
    }
    rows.push_back(sum);
  }
  std::nth_element(rows.begin(), rows.begin() + rows.size() / 2, rows.end());
  return rows[rows.size() / 2];
}

/// JSON string escaping for sketch names (arbitrary client bytes).
std::string EscapeJson(const std::string& raw) {
  std::string out;
  out.reserve(raw.size() + 2);
  for (const char c : raw) {
    const auto byte = static_cast<unsigned char>(c);
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (byte < 0x20) {
      static const char* kHex = "0123456789abcdef";
      out += "\\u00";
      out.push_back(kHex[byte >> 4]);
      out.push_back(kHex[byte & 0xf]);
    } else {
      out.push_back(c);
    }
  }
  return out;
}

using internal::SketchEntry;

class CountMinEntry : public SketchEntry {
 public:
  explicit CountMinEntry(CountMinSketch sketch) : sketch_(std::move(sketch)) {
    // A restored sketch's L1 mass is recovered from row 0: every update
    // adds its delta to exactly one counter per row, so for a
    // non-negative stream the row sum equals the stream mass.
    for (uint64_t b = 0; b < sketch_.width(); ++b) {
      const int64_t c = sketch_.CounterAt(0, b);
      l1_mass_ += c < 0 ? -c : c;
    }
  }

  SketchType type() const override { return SketchType::kCountMin; }

  bool Ingest(UpdateSpan updates, ErrorResponse*) override {
    sketch_.ApplyBatch(updates);
    l1_mass_ += BatchL1(updates);
    updates_applied_ += updates.size();
    return true;
  }

  PointValueResponse PointQuery(uint64_t item) override {
    PointValueResponse response;
    response.estimate = sketch_.Estimate(item);
    response.error_bound = kEuler / static_cast<double>(sketch_.width()) *
                           static_cast<double>(l1_mass_);
    response.bound_kind = BoundKind::kL1;
    return response;
  }

  void PointQueryBatch(const std::vector<uint64_t>& items,
                       std::vector<PointValueResponse>* out) override {
    // Batched read path: buckets come from the EstimateBatch kernel
    // (SIMD-tier), and the L1 bound is shared by every key in the batch.
    std::vector<int64_t> estimates(items.size());
    sketch_.EstimateBatch(items.data(), items.size(), estimates.data());
    PointValueResponse value;
    value.error_bound = kEuler / static_cast<double>(sketch_.width()) *
                        static_cast<double>(l1_mass_);
    value.bound_kind = BoundKind::kL1;
    out->reserve(items.size());
    for (int64_t estimate : estimates) {
      value.estimate = estimate;
      out->push_back(value);
    }
  }

  bool HeavyHitters(double, std::vector<uint64_t>*,
                    ErrorResponse* error) override {
    error->code = ErrorCode::kUnsupported;
    error->message = "flat CountMin cannot enumerate items; use a "
                     "StreamSummary sketch";
    return false;
  }

  bool InnerProduct(SketchEntry& other, int64_t* result,
                    ErrorResponse* error) override {
    const CountMinSketch* rhs = other.AsCountMin();
    if (rhs == nullptr) {
      error->code = ErrorCode::kUnsupported;
      error->message = "inner product requires two CountMin sketches";
      return false;
    }
    if (rhs->width() != sketch_.width() || rhs->depth() != sketch_.depth() ||
        rhs->seed() != sketch_.seed() ||
        rhs->width_mode() != sketch_.width_mode()) {
      error->code = ErrorCode::kGeometryMismatch;
      error->message = "inner product requires identical geometry and seed";
      return false;
    }
    *result = sketch_.EstimateInnerProduct(*rhs);
    return true;
  }

  std::vector<uint8_t> Snapshot() override { return sketch_.Serialize(); }
  const CountMinSketch* AsCountMin() override { return &sketch_; }
  uint64_t SizeInCounters() const override { return sketch_.SizeInCounters(); }
  uint64_t MemoryFootprintBytes() const override {
    return sketch_.MemoryFootprintBytes();
  }
  StatsSnapshot Introspect() const override { return sketch_.Introspect(); }

 private:
  CountMinSketch sketch_;
  int64_t l1_mass_ = 0;
};

class CountSketchEntry : public SketchEntry {
 public:
  explicit CountSketchEntry(CountSketch sketch) : sketch_(std::move(sketch)) {}

  SketchType type() const override { return SketchType::kCountSketch; }

  bool Ingest(UpdateSpan updates, ErrorResponse*) override {
    sketch_.ApplyBatch(updates);
    updates_applied_ += updates.size();
    return true;
  }

  PointValueResponse PointQuery(uint64_t item) override {
    PointValueResponse response;
    response.estimate = sketch_.Estimate(item);
    response.error_bound =
        std::sqrt(3.0 * EstimateF2FromCounters(sketch_) /
                  static_cast<double>(sketch_.width()));
    response.bound_kind = BoundKind::kL2;
    return response;
  }

  void PointQueryBatch(const std::vector<uint64_t>& items,
                       std::vector<PointValueResponse>* out) override {
    // The F2 scan (a full pass over the counter table) dominates a single
    // point query; batching amortizes it over the whole key list on top of
    // the SIMD bucket/sign computation in EstimateBatch.
    std::vector<int64_t> estimates(items.size());
    sketch_.EstimateBatch(items.data(), items.size(), estimates.data());
    PointValueResponse value;
    value.error_bound =
        std::sqrt(3.0 * EstimateF2FromCounters(sketch_) /
                  static_cast<double>(sketch_.width()));
    value.bound_kind = BoundKind::kL2;
    out->reserve(items.size());
    for (int64_t estimate : estimates) {
      value.estimate = estimate;
      out->push_back(value);
    }
  }

  bool HeavyHitters(double, std::vector<uint64_t>*,
                    ErrorResponse* error) override {
    error->code = ErrorCode::kUnsupported;
    error->message = "flat CountSketch cannot enumerate items; use a "
                     "StreamSummary sketch";
    return false;
  }

  bool InnerProduct(SketchEntry& other, int64_t* result,
                    ErrorResponse* error) override {
    const CountSketch* rhs = other.AsCountSketch();
    if (rhs == nullptr) {
      error->code = ErrorCode::kUnsupported;
      error->message = "inner product requires two CountSketch sketches";
      return false;
    }
    if (rhs->width() != sketch_.width() || rhs->depth() != sketch_.depth() ||
        rhs->seed() != sketch_.seed() ||
        rhs->width_mode() != sketch_.width_mode()) {
      error->code = ErrorCode::kGeometryMismatch;
      error->message = "inner product requires identical geometry and seed";
      return false;
    }
    *result = sketch_.EstimateInnerProduct(*rhs);
    return true;
  }

  std::vector<uint8_t> Snapshot() override { return sketch_.Serialize(); }
  const CountSketch* AsCountSketch() override { return &sketch_; }
  uint64_t SizeInCounters() const override { return sketch_.SizeInCounters(); }
  uint64_t MemoryFootprintBytes() const override {
    return sketch_.MemoryFootprintBytes();
  }
  StatsSnapshot Introspect() const override { return sketch_.Introspect(); }

 private:
  CountSketch sketch_;
};

class BloomEntry : public SketchEntry {
 public:
  explicit BloomEntry(BloomFilter filter) : filter_(std::move(filter)) {}

  SketchType type() const override { return SketchType::kBloom; }

  bool Ingest(UpdateSpan updates, ErrorResponse*) override {
    // Set semantics: each update inserts its item; the delta is ignored
    // (a Bloom filter has no deletion).
    filter_.ApplyBatch(updates);
    updates_applied_ += updates.size();
    return true;
  }

  PointValueResponse PointQuery(uint64_t item) override {
    PointValueResponse response;
    response.estimate = filter_.MayContain(item) ? 1 : 0;
    // The membership answer's error scale is the current false-positive
    // probability: FillRatio^num_hashes.
    response.error_bound =
        std::pow(filter_.FillRatio(), filter_.num_hashes());
    response.bound_kind = BoundKind::kFpr;
    return response;
  }

  bool HeavyHitters(double, std::vector<uint64_t>*,
                    ErrorResponse* error) override {
    error->code = ErrorCode::kUnsupported;
    error->message = "Bloom filters answer membership, not frequencies";
    return false;
  }

  bool InnerProduct(SketchEntry&, int64_t*, ErrorResponse* error) override {
    error->code = ErrorCode::kUnsupported;
    error->message = "Bloom filters do not support inner products";
    return false;
  }

  std::vector<uint8_t> Snapshot() override { return filter_.Serialize(); }
  uint64_t SizeInCounters() const override {
    return (filter_.num_bits() + 63) / 64;
  }
  uint64_t MemoryFootprintBytes() const override {
    return filter_.MemoryFootprintBytes();
  }
  StatsSnapshot Introspect() const override { return filter_.Introspect(); }

 private:
  BloomFilter filter_;
};

class SummaryEntry : public SketchEntry {
 public:
  explicit SummaryEntry(StreamSummary summary) : summary_(std::move(summary)) {}

  SketchType type() const override { return SketchType::kStreamSummary; }

  bool Ingest(UpdateSpan updates, ErrorResponse* error) override {
    // The dyadic decomposition only covers [0, 2^log_universe); reject
    // the whole batch up front (atomically) rather than tripping the
    // debug assertion inside DyadicCountMin.
    const uint64_t universe =
        1ULL << static_cast<unsigned>(summary_.options().log_universe);
    for (const StreamUpdate& u : updates) {
      if (u.item >= universe) {
        error->code = ErrorCode::kMalformedPayload;
        error->message = "item outside the StreamSummary universe";
        return false;
      }
    }
    summary_.ApplyBatch(updates);
    updates_applied_ += updates.size();
    return true;
  }

  PointValueResponse PointQuery(uint64_t item) override {
    PointValueResponse response;
    const uint64_t universe =
        1ULL << static_cast<unsigned>(summary_.options().log_universe);
    if (item >= universe) {
      // Out-of-universe items were never ingested: answer zero exactly.
      response.estimate = 0;
      response.error_bound = 0.0;
      response.bound_kind = BoundKind::kNone;
      return response;
    }
    response.estimate = summary_.EstimateCount(item);
    response.error_bound =
        std::sqrt(3.0 * summary_.EstimateF2() /
                  static_cast<double>(summary_.options().verify_width));
    response.bound_kind = BoundKind::kL2;
    return response;
  }

  bool HeavyHitters(double phi, std::vector<uint64_t>* out,
                    ErrorResponse*) override {
    *out = summary_.HeavyHitters(phi);
    if (out->size() > kMaxHeavyHitterItems) out->resize(kMaxHeavyHitterItems);
    return true;
  }

  bool InnerProduct(SketchEntry&, int64_t*, ErrorResponse* error) override {
    error->code = ErrorCode::kUnsupported;
    error->message = "StreamSummary does not support inner products";
    return false;
  }

  std::vector<uint8_t> Snapshot() override { return summary_.Serialize(); }
  uint64_t SizeInCounters() const override {
    return summary_.SizeInCounters();
  }
  uint64_t MemoryFootprintBytes() const override {
    return summary_.MemoryFootprintBytes();
  }
  StatsSnapshot Introspect() const override { return summary_.Introspect(); }

 private:
  StreamSummary summary_;
};

/// Sharded Count-Min: ingest fans out across `num_shards` replicas on the
/// service pool; queries materialize the collapsed sketch lazily (cached
/// until the next ingest dirties it). Restored state lives in `base_`,
/// kept outside the replicas so a restore never multiplies counts.
///
/// Concurrency: queries run under the owning handle's *shared* lock, so
/// the lazy materialization is serialized by an internal cache_mutex_.
/// Ingest (exclusive lock) marks the cache dirty; the first query after
/// an ingest rebuilds it and concurrent queries wait on cache_mutex_
/// rather than each collapsing the shards.
class ShardedCountMinEntry : public SketchEntry {
 public:
  ShardedCountMinEntry(const CountMinSketch& prototype, CountMinSketch base,
                       std::size_t num_shards, ThreadPool* pool)
      : sharded_(prototype, num_shards, pool),
        base_(std::move(base)),
        cache_(prototype) {
    // Restored state arrives through base_; recover its L1 mass from
    // row 0 exactly like CountMinEntry (zero for a fresh create).
    for (uint64_t b = 0; b < base_.width(); ++b) {
      const int64_t c = base_.CounterAt(0, b);
      l1_mass_ += c < 0 ? -c : c;
    }
  }

  SketchType type() const override { return SketchType::kShardedCountMin; }

  bool Ingest(UpdateSpan updates, ErrorResponse*) override {
    sharded_.Ingest(updates);
    l1_mass_ += BatchL1(updates);
    updates_applied_ += updates.size();
    MutexLock lock(cache_mutex_);
    dirty_ = true;
    return true;
  }

  PointValueResponse PointQuery(uint64_t item) override {
    const CountMinSketch& view = Materialize();
    PointValueResponse response;
    response.estimate = view.Estimate(item);
    response.error_bound = kEuler / static_cast<double>(view.width()) *
                           static_cast<double>(l1_mass_);
    response.bound_kind = BoundKind::kL1;
    return response;
  }

  void PointQueryBatch(const std::vector<uint64_t>& items,
                       std::vector<PointValueResponse>* out) override {
    const CountMinSketch& view = Materialize();
    std::vector<int64_t> estimates(items.size());
    view.EstimateBatch(items.data(), items.size(), estimates.data());
    PointValueResponse value;
    value.error_bound = kEuler / static_cast<double>(view.width()) *
                        static_cast<double>(l1_mass_);
    value.bound_kind = BoundKind::kL1;
    out->reserve(items.size());
    for (int64_t estimate : estimates) {
      value.estimate = estimate;
      out->push_back(value);
    }
  }

  bool HeavyHitters(double, std::vector<uint64_t>*,
                    ErrorResponse* error) override {
    error->code = ErrorCode::kUnsupported;
    error->message = "flat CountMin cannot enumerate items; use a "
                     "StreamSummary sketch";
    return false;
  }

  bool InnerProduct(SketchEntry& other, int64_t* result,
                    ErrorResponse* error) override {
    const CountMinSketch& lhs = Materialize();
    const CountMinSketch* rhs = other.AsCountMin();
    if (rhs == nullptr) {
      error->code = ErrorCode::kUnsupported;
      error->message = "inner product requires two CountMin sketches";
      return false;
    }
    if (rhs->width() != lhs.width() || rhs->depth() != lhs.depth() ||
        rhs->seed() != lhs.seed() ||
        rhs->width_mode() != lhs.width_mode()) {
      error->code = ErrorCode::kGeometryMismatch;
      error->message = "inner product requires identical geometry and seed";
      return false;
    }
    *result = lhs.EstimateInnerProduct(*rhs);
    return true;
  }

  std::vector<uint8_t> Snapshot() override { return Materialize().Serialize(); }
  const CountMinSketch* AsCountMin() override { return &Materialize(); }

  uint64_t SizeInCounters() const override {
    return base_.SizeInCounters() * (sharded_.num_shards() + 2);
  }
  uint64_t MemoryFootprintBytes() const override {
    return sharded_.MemoryFootprintBytes() + base_.MemoryFootprintBytes() +
           cache_.MemoryFootprintBytes();
  }
  StatsSnapshot Introspect() const override {
    // Introspect the live shards plus the restored base, never the
    // materialization cache (mutating it here would violate the
    // shared-lock contract, and it is derived state anyway).
    StatsSnapshot snapshot = sharded_.Introspect();
    snapshot.children.push_back(base_.Introspect());
    return snapshot;
  }

 private:
  const CountMinSketch& Materialize() {
    MutexLock lock(cache_mutex_);
    if (dirty_) {
      cache_ = sharded_.Collapse();
      cache_.Merge(base_);
      dirty_ = false;
    }
    return cache_;
  }

  ShardedSketch<CountMinSketch> sharded_;
  CountMinSketch base_;
  mutable Mutex cache_mutex_;
  // cache_ is written only inside cache_mutex_ (Materialize). It is
  // deliberately *not* annotated GUARDED_BY: Materialize returns it by
  // reference to callers that keep reading it after the mutex drops,
  // which is safe because dirty_ can only become true again under the
  // owning handle's exclusive lock — i.e. after every shared-lock reader
  // has left. Annotating it would trip -Wthread-safety-reference on that
  // (correct) return.
  CountMinSketch cache_;
  int64_t l1_mass_ = 0;
  bool dirty_ SKETCH_GUARDED_BY(cache_mutex_) = true;
};

/// True iff width * depth is a valid, budgeted counter table.
bool ValidTable(uint64_t width, uint64_t depth, uint64_t budget) {
  return width >= 1 && depth >= 1 && width <= UINT64_MAX / depth &&
         width * depth <= budget;
}

/// Parses a width-mode request word (0 = division, 1 = pow2; anything else
/// is bad geometry). On success, *width is replaced by the width the
/// sketch will actually have — rounded up for pow2 — so the table-budget
/// checks below always see the real allocation, and the later
/// `std::bit_ceil` inside the sketch constructor can never trip its own
/// range CHECK on hostile input (the budget is far below 2^63).
bool ParseWidthMode(uint64_t mode_word, uint64_t* width, WidthMode* mode) {
  if (mode_word == static_cast<uint64_t>(WidthMode::kDivision)) {
    *mode = WidthMode::kDivision;
    return true;
  }
  if (mode_word != static_cast<uint64_t>(WidthMode::kPow2)) return false;
  if (*width < 1 || *width > (1ULL << 62)) return false;
  *mode = WidthMode::kPow2;
  *width = std::bit_ceil(*width);
  return true;
}

/// Inner-product body shared by the single-lock (self-join) and
/// address-ordered two-lock paths of HandleInnerProduct.
std::vector<uint8_t> InnerProductBetween(SketchEntry& left,
                                         SketchEntry& right) {
  int64_t result = 0;
  ErrorResponse error;
  if (!left.InnerProduct(right, &result, &error)) {
    return EncodeError(error);
  }
  PointValueResponse response;
  response.estimate = result;
  response.bound_kind = BoundKind::kNone;
  return EncodePointValue(response);
}

/// Best-effort sketch name of a request frame for the slow-query log:
/// every sketch-addressing request opcode leads with the name string, so
/// one bounds-checked read recovers it without re-running the typed
/// decoder. Empty for nameless requests (ping, statsz, ...) and malformed
/// payloads.
std::string PeekSketchName(const Frame& frame) {
  switch (frame.opcode) {
    case Opcode::kCreateSketch:
    case Opcode::kDropSketch:
    case Opcode::kIngest:
    case Opcode::kPointQuery:
    case Opcode::kPointQueryBatch:
    case Opcode::kHeavyHitters:
    case Opcode::kInnerProduct:  // left operand
    case Opcode::kSnapshot:
    case Opcode::kRestore:
      break;
    default:
      return std::string();
  }
  PayloadReader reader(frame.payload);
  std::string name;
  if (!reader.TryReadString(&name)) return std::string();
  return name;
}

#if SKETCH_TELEMETRY_ENABLED
/// Trace id of the request currently being dispatched on this thread
/// (0 = untraced). Plumbed thread-locally so the lock/kernel spans deep
/// inside WithEntry* need no signature changes across every handler.
thread_local uint64_t tls_trace_id = 0;

/// Sets tls_trace_id for the scope of one request dispatch.
class ScopedRequestTraceId {
 public:
  explicit ScopedRequestTraceId(uint64_t id) { tls_trace_id = id; }
  ~ScopedRequestTraceId() { tls_trace_id = 0; }
  ScopedRequestTraceId(const ScopedRequestTraceId&) = delete;
  ScopedRequestTraceId& operator=(const ScopedRequestTraceId&) = delete;
};

/// Times an entry-lock acquisition for traced requests: construct before
/// the lock, call Locked() immediately after. Untraced requests pay one
/// thread-local load and no clock reads.
class TracedLockTimer {
 public:
  TracedLockTimer()
      : id_(tls_trace_id), start_ns_(id_ != 0 ? MonotonicNowNs() : 0) {}
  explicit TracedLockTimer(uint64_t id)
      : id_(id), start_ns_(id != 0 ? MonotonicNowNs() : 0) {}

  void Locked() const {
    if (id_ != 0) {
      telemetry::TraceRecorder::Instance().RecordSpan(
          "server.entry_lock", start_ns_, MonotonicNowNs() - start_ns_, id_);
    }
  }

 private:
  const uint64_t id_;
  const uint64_t start_ns_;
};

/// Runs a handler body, bracketing it with a server.kernel span when the
/// current request is traced.
template <typename Fn, typename Entry>
std::vector<uint8_t> RunKernel(Fn&& fn, Entry& entry) {
  const uint64_t id = tls_trace_id;
  if (id == 0) return fn(entry);
  SKETCH_TRACE_SPAN_ID("server.kernel", id);
  return fn(entry);
}

/// Ingest bracketed with a server.kernel span when the request is traced
/// (the coalesced-run path, where the id rides on the request, not tls).
bool TracedIngest(internal::SketchEntry& entry, const IngestRequest& request,
                  ErrorResponse* error) {
  if (request.trace_id != 0) {
    SKETCH_TRACE_SPAN_ID("server.kernel", request.trace_id);
    return entry.Ingest(UpdateSpan(request.updates), error);
  }
  return entry.Ingest(UpdateSpan(request.updates), error);
}
#else   // !SKETCH_TELEMETRY_ENABLED
class ScopedRequestTraceId {
 public:
  explicit ScopedRequestTraceId(uint64_t) {}
};

class TracedLockTimer {
 public:
  TracedLockTimer() = default;
  explicit TracedLockTimer(uint64_t) {}
  void Locked() const {}
};

template <typename Fn, typename Entry>
std::vector<uint8_t> RunKernel(Fn&& fn, Entry& entry) {
  return fn(entry);
}

bool TracedIngest(internal::SketchEntry& entry, const IngestRequest& request,
                  ErrorResponse* error) {
  return entry.Ingest(UpdateSpan(request.updates), error);
}
#endif  // SKETCH_TELEMETRY_ENABLED

#if SKETCH_TELEMETRY_ENABLED
/// Per-opcode request-latency histograms (log2 buckets). The histogram
/// macros demand static-lifetime literal names, hence the switch: one
/// literal per opcode, resolved to a cached registry reference on first
/// use.
void RecordOpcodeLatencyNs(Opcode opcode, uint64_t ns) {
  switch (opcode) {
    case Opcode::kPing:
      SKETCH_HISTOGRAM_RECORD("server.latency_ns.Ping", ns);
      break;
    case Opcode::kCreateSketch:
      SKETCH_HISTOGRAM_RECORD("server.latency_ns.CreateSketch", ns);
      break;
    case Opcode::kDropSketch:
      SKETCH_HISTOGRAM_RECORD("server.latency_ns.DropSketch", ns);
      break;
    case Opcode::kIngest:
      SKETCH_HISTOGRAM_RECORD("server.latency_ns.Ingest", ns);
      break;
    case Opcode::kPointQuery:
      SKETCH_HISTOGRAM_RECORD("server.latency_ns.PointQuery", ns);
      break;
    case Opcode::kHeavyHitters:
      SKETCH_HISTOGRAM_RECORD("server.latency_ns.HeavyHitters", ns);
      break;
    case Opcode::kInnerProduct:
      SKETCH_HISTOGRAM_RECORD("server.latency_ns.InnerProduct", ns);
      break;
    case Opcode::kSnapshot:
      SKETCH_HISTOGRAM_RECORD("server.latency_ns.Snapshot", ns);
      break;
    case Opcode::kRestore:
      SKETCH_HISTOGRAM_RECORD("server.latency_ns.Restore", ns);
      break;
    case Opcode::kListSketches:
      SKETCH_HISTOGRAM_RECORD("server.latency_ns.ListSketches", ns);
      break;
    case Opcode::kStatsz:
      SKETCH_HISTOGRAM_RECORD("server.latency_ns.Statsz", ns);
      break;
    case Opcode::kTraceDump:
      SKETCH_HISTOGRAM_RECORD("server.latency_ns.TraceDump", ns);
      break;
    case Opcode::kShutdown:
      SKETCH_HISTOGRAM_RECORD("server.latency_ns.Shutdown", ns);
      break;
    case Opcode::kPointQueryBatch:
      SKETCH_HISTOGRAM_RECORD("server.latency_ns.PointQueryBatch", ns);
      break;
    default:
      SKETCH_HISTOGRAM_RECORD("server.latency_ns.Unknown", ns);
      break;
  }
}
#endif  // SKETCH_TELEMETRY_ENABLED

}  // namespace

std::vector<uint8_t> SketchService::HandleFrame(const Frame& frame) {
  // The dispatch span of a traced request's life (decode and write live
  // in the transport layers); tagged with the wire trace id when present.
  SKETCH_TRACE_SPAN_ID("server.handle_frame", frame.trace_id);
  SKETCH_COUNTER_INC("server.frames_handled");
  const ScopedRequestTraceId scoped_id(frame.trace_id);
#if SKETCH_TELEMETRY_ENABLED
  const bool timed = true;
#else
  // The slow-query log is the only latency consumer in telemetry-off
  // builds; skip both clock reads entirely when it is disabled.
  const bool timed = slow_log_.enabled();
#endif
  if (!timed) return DispatchFrame(frame);
  const uint64_t start_ns = MonotonicNowNs();
  std::vector<uint8_t> response = DispatchFrame(frame);
  const uint64_t latency_ns = MonotonicNowNs() - start_ns;
#if SKETCH_TELEMETRY_ENABLED
  RecordOpcodeLatencyNs(frame.opcode, latency_ns);
#endif
  if (slow_log_.enabled() && slow_log_.WouldRecord(frame.opcode, latency_ns)) {
    slow_log_.Record(frame.opcode, latency_ns, PeekSketchName(frame),
                     frame.payload.size(), frame.trace_id);
  }
  return response;
}

std::vector<uint8_t> SketchService::DispatchFrame(const Frame& frame) {
  switch (frame.opcode) {
    case Opcode::kPing:
      return frame.payload.empty() ? EncodePong()
                                   : MalformedPayload(frame.opcode);
    case Opcode::kCreateSketch:
      return HandleCreate(frame);
    case Opcode::kDropSketch:
    case Opcode::kSnapshot: {
      NamedRequest request;
      if (!DecodeNamedRequest(frame, &request)) {
        return MalformedPayload(frame.opcode);
      }
      return frame.opcode == Opcode::kDropSketch ? HandleDrop(request)
                                                 : HandleSnapshot(request);
    }
    case Opcode::kIngest:
      return HandleIngest(frame);
    case Opcode::kPointQuery:
      return HandlePointQuery(frame);
    case Opcode::kPointQueryBatch:
      return HandlePointQueryBatch(frame);
    case Opcode::kHeavyHitters:
      return HandleHeavyHitters(frame);
    case Opcode::kInnerProduct:
      return HandleInnerProduct(frame);
    case Opcode::kRestore:
      return HandleRestore(frame);
    case Opcode::kListSketches:
      return frame.payload.empty() ? HandleList()
                                   : MalformedPayload(frame.opcode);
    case Opcode::kStatsz:
      return frame.payload.empty() ? HandleStatsz()
                                   : MalformedPayload(frame.opcode);
    case Opcode::kTraceDump:
      return frame.payload.empty() ? HandleTraceDump()
                                   : MalformedPayload(frame.opcode);
    case Opcode::kShutdown:
      shutdown_.store(true, std::memory_order_release);
      return EncodeOk();
    default:
      break;
  }
  return MakeError(ErrorCode::kUnknownOpcode,
                   std::string("unknown or non-request opcode ") +
                       OpcodeName(frame.opcode));
}

void SketchService::HandleFrames(const std::vector<Frame>& frames,
                                 std::vector<std::vector<uint8_t>>* responses) {
  responses->reserve(responses->size() + frames.size());
  std::size_t i = 0;
  while (i < frames.size()) {
    if (frames[i].opcode != Opcode::kIngest) {
      responses->push_back(HandleFrame(frames[i]));
      ++i;
      continue;
    }
    // Collect the longest run of consecutive, well-formed ingest frames
    // addressing the same sketch; the run shares one registry lookup and
    // one exclusive entry lock.
    std::vector<IngestRequest> run;
    while (i < frames.size() && frames[i].opcode == Opcode::kIngest) {
      IngestRequest request;
      if (!DecodeIngest(frames[i], &request)) {
        if (run.empty()) {
          responses->push_back(MalformedPayload(frames[i].opcode));
          ++i;
        }
        break;
      }
      if (!run.empty() && request.name != run.front().name) break;
      run.push_back(std::move(request));
      ++i;
    }
    if (!run.empty()) ApplyIngestRun(run, responses);
  }
}

void SketchService::ApplyIngestRun(
    const std::vector<IngestRequest>& run,
    std::vector<std::vector<uint8_t>>* responses) {
  // The run span carries the first traced request's id so a sampled
  // ingest's Perfetto view shows the coalesced batch it rode in.
  uint64_t run_trace_id = 0;
  for (const IngestRequest& request : run) {
    if (request.trace_id != 0) {
      run_trace_id = request.trace_id;
      break;
    }
  }
  SKETCH_TRACE_SPAN_ID("server.ingest_run", run_trace_id);
  SKETCH_COUNTER_ADD("server.frames_handled", run.size());
  const std::shared_ptr<internal::EntryHandle> handle =
      FindHandle(run.front().name);
  if (handle == nullptr) {
    for (std::size_t i = 0; i < run.size(); ++i) {
      responses->push_back(NoSuchSketch(run.front().name));
    }
    return;
  }
  const TracedLockTimer timer(run_trace_id);
  WriterMutexLock lock(handle->mutex);
  timer.Locked();
  const bool slow_log_on = slow_log_.enabled();
  for (const IngestRequest& request : run) {
#if SKETCH_TELEMETRY_ENABLED
    const bool timed = true;
#else
    const bool timed = slow_log_on;
#endif
    const uint64_t start_ns = timed ? MonotonicNowNs() : 0;
    ErrorResponse error;
    const bool ok = TracedIngest(*handle->entry, request, &error);
    if (!ok) {
      responses->push_back(EncodeError(error));
    } else {
      SKETCH_COUNTER_ADD("server.updates_ingested", request.updates.size());
      IngestAckResponse ack;
      ack.accepted = request.updates.size();
      responses->push_back(EncodeIngestAck(ack));
    }
    if (timed) {
      const uint64_t latency_ns = MonotonicNowNs() - start_ns;
#if SKETCH_TELEMETRY_ENABLED
      RecordOpcodeLatencyNs(Opcode::kIngest, latency_ns);
#endif
      if (slow_log_on &&
          slow_log_.WouldRecord(Opcode::kIngest, latency_ns)) {
        // Reconstruct the wire payload size the coalescing path no longer
        // has: u16 name length + name + u32 count + 16 bytes per update.
        const std::size_t payload_bytes =
            2 + request.name.size() + 4 + 16 * request.updates.size();
        slow_log_.Record(Opcode::kIngest, latency_ns, request.name,
                         payload_bytes, request.trace_id);
      }
    }
  }
}

std::size_t SketchService::sketch_count() const {
  std::size_t total = 0;
  for (const RegistryStripe& stripe : stripes_) {
    MutexLock lock(stripe.mutex);
    total += stripe.entries.size();
  }
  return total;
}

void SketchService::RegisterGauge(const std::string& name,
                                  std::function<uint64_t()> gauge) {
  MutexLock lock(gauges_mutex_);
  gauges_.emplace_back(name, std::move(gauge));
}

const SketchService::RegistryStripe& SketchService::StripeFor(
    const std::string& name) const {
  return stripes_[std::hash<std::string>{}(name) % kRegistryStripes];
}

SketchService::RegistryStripe& SketchService::StripeFor(
    const std::string& name) {
  return stripes_[std::hash<std::string>{}(name) % kRegistryStripes];
}

std::shared_ptr<internal::EntryHandle> SketchService::FindHandle(
    const std::string& name) const {
  const RegistryStripe& stripe = StripeFor(name);
  MutexLock lock(stripe.mutex);
  const auto it = stripe.entries.find(name);
  return it == stripe.entries.end() ? nullptr : it->second;
}

template <typename Fn>
std::vector<uint8_t> SketchService::WithEntryShared(const std::string& name,
                                                    Fn&& fn) {
  const std::shared_ptr<internal::EntryHandle> handle = FindHandle(name);
  if (handle == nullptr) return NoSuchSketch(name);
  if (options_.exclusive_queries) {
    const TracedLockTimer timer;
    WriterMutexLock lock(handle->mutex);
    timer.Locked();
    return RunKernel(fn, *handle->entry);
  }
  const TracedLockTimer timer;
  ReaderMutexLock lock(handle->mutex);
  timer.Locked();
  return RunKernel(fn, *handle->entry);
}

template <typename Fn>
std::vector<uint8_t> SketchService::WithEntryExclusive(const std::string& name,
                                                       Fn&& fn) {
  const std::shared_ptr<internal::EntryHandle> handle = FindHandle(name);
  if (handle == nullptr) return NoSuchSketch(name);
  const TracedLockTimer timer;
  WriterMutexLock lock(handle->mutex);
  timer.Locked();
  return RunKernel(fn, *handle->entry);
}

bool SketchService::InsertEntry(const std::string& name,
                                std::unique_ptr<internal::SketchEntry> entry) {
  RegistryStripe& stripe = StripeFor(name);
  MutexLock lock(stripe.mutex);
  return stripe.entries
      .emplace(name, std::make_shared<internal::EntryHandle>(std::move(entry)))
      .second;
}

std::unique_ptr<internal::SketchEntry> SketchService::BuildEntry(
    const CreateSketchRequest& request, ErrorResponse* error) {
  const auto& p = request.params;
  switch (request.type) {
    case SketchType::kCountMin: {
      uint64_t width = p[0];
      WidthMode mode = WidthMode::kDivision;
      if (!ParseWidthMode(p[3], &width, &mode) ||
          !ValidTable(width, p[1], kMaxSketchCounters)) {
        break;
      }
      return std::make_unique<CountMinEntry>(
          CountMinSketch(p[0], p[1], p[2], mode));
    }
    case SketchType::kCountSketch: {
      uint64_t width = p[0];
      WidthMode mode = WidthMode::kDivision;
      if (!ParseWidthMode(p[3], &width, &mode) ||
          !ValidTable(width, p[1], kMaxSketchCounters)) {
        break;
      }
      return std::make_unique<CountSketchEntry>(
          CountSketch(p[0], p[1], p[2], mode));
    }
    case SketchType::kBloom: {
      uint64_t num_bits = p[0];
      const uint64_t num_hashes = p[1];
      WidthMode mode = WidthMode::kDivision;
      if (!ParseWidthMode(p[3], &num_bits, &mode) || num_bits < 1 ||
          num_bits > kMaxSketchCounters * 64 || num_hashes < 1 ||
          num_hashes > 1024) {
        break;
      }
      return std::make_unique<BloomEntry>(
          BloomFilter(p[0], static_cast<int>(num_hashes), p[2], mode));
    }
    case SketchType::kStreamSummary: {
      StreamSummary::Options options;
      const uint64_t log_universe = p[0];
      if (log_universe < 1 || log_universe > 40) break;
      options.log_universe = static_cast<int>(log_universe);
      options.width = p[1];
      options.depth = p[2];
      options.verify_width = p[3];
      options.seed = p[4];
      // Budget the whole composite: log_universe dyadic levels plus the
      // verifier and AMS tables (both at depth | 1).
      if (!ValidTable(options.width, options.depth, kMaxSketchCounters)) {
        break;
      }
      const uint64_t dyadic = options.width * options.depth * log_universe;
      if (options.width * options.depth > kMaxSketchCounters / log_universe ||
          !ValidTable(options.verify_width, options.depth | 1,
                      kMaxSketchCounters) ||
          !ValidTable(options.width, options.depth | 1, kMaxSketchCounters)) {
        break;
      }
      const uint64_t total = dyadic +
                             options.verify_width * (options.depth | 1) +
                             options.width * (options.depth | 1);
      if (total > kMaxSketchCounters) break;
      return std::make_unique<SummaryEntry>(StreamSummary(options));
    }
    case SketchType::kShardedCountMin: {
      const uint64_t num_shards = p[3];
      uint64_t width = p[0];
      WidthMode mode = WidthMode::kDivision;
      if (!ParseWidthMode(p[4], &width, &mode) ||
          !ValidTable(width, p[1], kMaxSketchCounters) || num_shards < 1 ||
          num_shards > 256) {
        break;
      }
      const CountMinSketch prototype(p[0], p[1], p[2], mode);
      return std::make_unique<ShardedCountMinEntry>(
          prototype, prototype, static_cast<std::size_t>(num_shards),
          options_.pool);
    }
  }
  error->code = ErrorCode::kBadGeometry;
  error->message = std::string("invalid parameters for sketch type ") +
                   SketchTypeName(request.type);
  return nullptr;
}

std::unique_ptr<internal::SketchEntry> SketchService::BuildEntryFromBlob(
    SketchType type, const std::vector<uint8_t>& blob) {
  switch (type) {
    case SketchType::kCountMin:
      return std::make_unique<CountMinEntry>(CountMinSketch::Deserialize(blob));
    case SketchType::kCountSketch:
      return std::make_unique<CountSketchEntry>(
          CountSketch::Deserialize(blob));
    case SketchType::kBloom:
      return std::make_unique<BloomEntry>(BloomFilter::Deserialize(blob));
    case SketchType::kStreamSummary:
      return std::make_unique<SummaryEntry>(StreamSummary::Deserialize(blob));
    case SketchType::kShardedCountMin: {
      CountMinSketch base = CountMinSketch::Deserialize(blob);
      // base.width() is already rounded when the blob is pow2, so the
      // prototype's own rounding is the identity — shards and the restored
      // base stay merge-compatible.
      const CountMinSketch prototype(base.width(), base.depth(), base.seed(),
                                     base.width_mode());
      return std::make_unique<ShardedCountMinEntry>(
          prototype, std::move(base), options_.default_shards, options_.pool);
    }
  }
  return nullptr;
}

std::vector<uint8_t> SketchService::HandleCreate(const Frame& frame) {
  CreateSketchRequest request;
  if (!DecodeCreateSketch(frame, &request) || request.name.empty()) {
    return MalformedPayload(frame.opcode);
  }
  switch (request.type) {
    case SketchType::kCountMin:
    case SketchType::kCountSketch:
    case SketchType::kBloom:
    case SketchType::kStreamSummary:
    case SketchType::kShardedCountMin:
      break;
    default:
      return MakeError(ErrorCode::kBadSketchType, "unknown sketch type");
  }
  ErrorResponse error;
  std::unique_ptr<internal::SketchEntry> entry = BuildEntry(request, &error);
  if (entry == nullptr) return EncodeError(error);
  if (!InsertEntry(request.name, std::move(entry))) {
    return MakeError(ErrorCode::kSketchExists,
                     "a sketch with this name already exists");
  }
  SKETCH_COUNTER_INC("server.sketches_created");
  return EncodeOk();
}

std::vector<uint8_t> SketchService::HandleDrop(const NamedRequest& request) {
  RegistryStripe& stripe = StripeFor(request.name);
  MutexLock lock(stripe.mutex);
  if (stripe.entries.erase(request.name) == 0) {
    return NoSuchSketch(request.name);
  }
  return EncodeOk();
}

std::vector<uint8_t> SketchService::HandleIngest(const Frame& frame) {
  SKETCH_TRACE_SPAN("server.ingest");
  IngestRequest request;
  if (!DecodeIngest(frame, &request)) return MalformedPayload(frame.opcode);
  return WithEntryExclusive(request.name, [&](internal::SketchEntry& entry) {
    ErrorResponse error;
    if (!entry.Ingest(UpdateSpan(request.updates), &error)) {
      return EncodeError(error);
    }
    SKETCH_COUNTER_ADD("server.updates_ingested", request.updates.size());
    IngestAckResponse ack;
    ack.accepted = request.updates.size();
    return EncodeIngestAck(ack);
  });
}

std::vector<uint8_t> SketchService::HandlePointQuery(const Frame& frame) {
  SKETCH_TRACE_SPAN("server.point_query");
  PointQueryRequest request;
  if (!DecodePointQuery(frame, &request)) {
    return MalformedPayload(frame.opcode);
  }
  return WithEntryShared(request.name, [&](internal::SketchEntry& entry) {
    SKETCH_COUNTER_INC("server.point_queries");
    return EncodePointValue(entry.PointQuery(request.item));
  });
}

std::vector<uint8_t> SketchService::HandlePointQueryBatch(const Frame& frame) {
  SKETCH_TRACE_SPAN("server.point_query_batch");
  PointQueryBatchRequest request;
  if (!DecodePointQueryBatch(frame, &request)) {
    return MalformedPayload(frame.opcode);
  }
  return WithEntryShared(request.name, [&](internal::SketchEntry& entry) {
    SKETCH_COUNTER_INC("server.point_query_batches");
    SKETCH_COUNTER_ADD("server.point_queries", request.items.size());
    ValueBatchResponse batch;
    entry.PointQueryBatch(request.items, &batch.values);
    return EncodeValueBatch(batch);
  });
}

std::vector<uint8_t> SketchService::HandleHeavyHitters(const Frame& frame) {
  SKETCH_TRACE_SPAN("server.heavy_hitters");
  HeavyHittersRequest request;
  if (!DecodeHeavyHitters(frame, &request)) {
    return MalformedPayload(frame.opcode);
  }
  // StreamSummary::HeavyHitters CHECKs its threshold; validate here so a
  // hostile phi is an error response, not an abort.
  if (!(request.phi > 0.0) || !(request.phi < 1.0)) {
    return MakeError(ErrorCode::kMalformedPayload,
                     "phi must lie strictly between 0 and 1");
  }
  return WithEntryShared(request.name, [&](internal::SketchEntry& entry) {
    ItemsResponse items;
    ErrorResponse error;
    if (!entry.HeavyHitters(request.phi, &items.items, &error)) {
      return EncodeError(error);
    }
    return EncodeItems(items);
  });
}

std::vector<uint8_t> SketchService::HandleInnerProduct(const Frame& frame) {
  SKETCH_TRACE_SPAN("server.inner_product");
  InnerProductRequest request;
  if (!DecodeInnerProduct(frame, &request)) {
    return MalformedPayload(frame.opcode);
  }
  const std::shared_ptr<internal::EntryHandle> left =
      FindHandle(request.left);
  const std::shared_ptr<internal::EntryHandle> right =
      FindHandle(request.right);
  if (left == nullptr || right == nullptr) {
    return MakeError(ErrorCode::kNoSuchSketch,
                     "both sketches must exist for an inner product");
  }
  if (left == right) {
    // Self inner product: one entry, one lock.
    if (options_.exclusive_queries) {
      WriterMutexLock lock(left->mutex);
      return InnerProductBetween(*left->entry, *left->entry);
    }
    ReaderMutexLock lock(left->mutex);
    return InnerProductBetween(*left->entry, *left->entry);
  }
  // Two distinct entries: acquire both locks in increasing handle address
  // order (the documented lock order for multi-entry operations — shared
  // acquisitions included, since writer-priority rwlocks can deadlock on
  // crossed shared/shared acquisition too).
  const bool left_first =
      std::less<internal::EntryHandle*>()(left.get(), right.get());
  internal::EntryHandle& lo = left_first ? *left : *right;
  internal::EntryHandle& hi = left_first ? *right : *left;
  if (options_.exclusive_queries) {
    WriterMutexLock lo_lock(lo.mutex);
    WriterMutexLock hi_lock(hi.mutex);
    internal::SketchEntry& lo_entry = *lo.entry;
    internal::SketchEntry& hi_entry = *hi.entry;
    return InnerProductBetween(left_first ? lo_entry : hi_entry,
                               left_first ? hi_entry : lo_entry);
  }
  ReaderMutexLock lo_lock(lo.mutex);
  ReaderMutexLock hi_lock(hi.mutex);
  internal::SketchEntry& lo_entry = *lo.entry;
  internal::SketchEntry& hi_entry = *hi.entry;
  return InnerProductBetween(left_first ? lo_entry : hi_entry,
                             left_first ? hi_entry : lo_entry);
}

std::vector<uint8_t> SketchService::HandleSnapshot(
    const NamedRequest& request) {
  SKETCH_TRACE_SPAN("server.snapshot");
  return WithEntryShared(request.name, [&](internal::SketchEntry& entry) {
    BlobResponse blob;
    blob.bytes = entry.Snapshot();
    SKETCH_COUNTER_INC("server.snapshots");
    return EncodeBlob(blob);
  });
}

std::vector<uint8_t> SketchService::HandleRestore(const Frame& frame) {
  SKETCH_TRACE_SPAN("server.restore");
  RestoreRequest request;
  if (!DecodeRestore(frame, &request) || request.name.empty()) {
    return MalformedPayload(frame.opcode);
  }
  // Full structural validation of the untrusted blob BEFORE the
  // CHECK-validating Deserialize sees it: a malformed blob must produce
  // an error response, never a daemon abort.
  const BlobCheckResult check =
      CheckSketchBlob(request.type, request.blob, kMaxSketchCounters);
  if (!check.ok) {
    return MakeError(ErrorCode::kBadBlob, check.error);
  }
  std::unique_ptr<internal::SketchEntry> entry =
      BuildEntryFromBlob(request.type, request.blob);
  if (entry == nullptr) {
    return MakeError(ErrorCode::kBadSketchType, "unknown sketch type");
  }
  if (!InsertEntry(request.name, std::move(entry))) {
    return MakeError(ErrorCode::kSketchExists,
                     "a sketch with this name already exists");
  }
  SKETCH_COUNTER_INC("server.restores");
  return EncodeOk();
}

namespace {

/// Snapshot of the registry in name order (a std::map per stripe keeps
/// each stripe sorted; merging into one map restores the global order the
/// pre-striping server reported). Only one stripe mutex is held at a
/// time, and no entry lock is held while gathering.
using HandleMap =
    std::map<std::string, std::shared_ptr<internal::EntryHandle>>;

}  // namespace

std::vector<uint8_t> SketchService::HandleList() {
  HandleMap handles;
  for (const RegistryStripe& stripe : stripes_) {
    MutexLock lock(stripe.mutex);
    handles.insert(stripe.entries.begin(), stripe.entries.end());
  }
  std::ostringstream out;
  out << "[";
  bool first = true;
  for (const auto& [name, handle] : handles) {
    if (!first) out << ",";
    first = false;
    const auto describe = [&out, &name](internal::SketchEntry& entry) {
      out << "{\"name\":\"" << EscapeJson(name) << "\",\"type\":\""
          << SketchTypeName(entry.type()) << "\",\"counters\":"
          << entry.SizeInCounters() << ",\"updates\":"
          << entry.updates_applied() << "}";
    };
    if (options_.exclusive_queries) {
      WriterMutexLock lock(handle->mutex);
      describe(*handle->entry);
    } else {
      ReaderMutexLock lock(handle->mutex);
      describe(*handle->entry);
    }
  }
  out << "]";
  TextResponse response;
  response.text = out.str();
  return EncodeText(response);
}

std::vector<uint8_t> SketchService::HandleStatsz() {
  TextResponse response;
  response.text = StatszJson();
  return EncodeText(response);
}

std::string SketchService::StatszJson() {
  // /statsz: registry summary, registered pull-gauges, the slow-query
  // log, and the process-wide metric registry, one JSON object.
  HandleMap handles;
  for (const RegistryStripe& stripe : stripes_) {
    MutexLock lock(stripe.mutex);
    handles.insert(stripe.entries.begin(), stripe.entries.end());
  }
  std::ostringstream out;
  out << "{\"sketches\":[";
  bool first = true;
  for (const auto& [name, handle] : handles) {
    if (!first) out << ",";
    first = false;
    const auto describe = [&out, &name](internal::SketchEntry& entry) {
      out << "{\"name\":\"" << EscapeJson(name) << "\",\"type\":\""
          << SketchTypeName(entry.type()) << "\",\"counters\":"
          << entry.SizeInCounters() << ",\"memory_bytes\":"
          << entry.MemoryFootprintBytes() << ",\"updates\":"
          << entry.updates_applied() << "}";
    };
    if (options_.exclusive_queries) {
      WriterMutexLock lock(handle->mutex);
      describe(*handle->entry);
    } else {
      ReaderMutexLock lock(handle->mutex);
      describe(*handle->entry);
    }
  }
  out << "],\"gauges\":{";
  {
    MutexLock lock(gauges_mutex_);
    bool first_gauge = true;
    for (const auto& [gauge_name, gauge_fn] : gauges_) {
      if (!first_gauge) out << ",";
      first_gauge = false;
      out << "\"" << EscapeJson(gauge_name) << "\":" << gauge_fn();
    }
  }
  out << "},\"slow_queries\":" << slow_log_.ToJson() << ",\"metrics\":"
      << telemetry::MetricRegistry::Instance().DumpJson() << "}";
  return out.str();
}

void SketchService::ForEachSketch(
    const std::function<void(const std::string&,
                             const internal::SketchEntry&)>& fn) const {
  // Gather handles stripe by stripe (stripe mutex only), then visit each
  // entry under its own shared lock — never a stripe mutex and an entry
  // lock together, and only one entry lock at a time, so this walk can
  // never participate in a lock cycle with request handling.
  HandleMap handles;
  for (const RegistryStripe& stripe : stripes_) {
    MutexLock lock(stripe.mutex);
    handles.insert(stripe.entries.begin(), stripe.entries.end());
  }
  for (const auto& [name, handle] : handles) {
    ReaderMutexLock lock(handle->mutex);
    fn(name, *handle->entry);
  }
}

std::vector<uint8_t> SketchService::HandleTraceDump() {
  TextResponse response;
  response.text =
      telemetry::TraceRecorder::Instance().ExportChromeTraceJson();
  return EncodeText(response);
}

}  // namespace sketch::server
