#ifndef SKETCH_SERVER_SKETCH_SERVICE_H_
#define SKETCH_SERVER_SKETCH_SERVICE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "server/protocol.h"
#include "server/slow_query_log.h"
#include "sketch/bloom_filter.h"
#include "sketch/count_min.h"
#include "sketch/count_sketch.h"
#include "sketch/stream_summary.h"
#include "stream/update.h"
#include "telemetry/stats.h"

/// \file
/// The sketch-as-a-service registry: named sketches, batched ingest,
/// point / heavy-hitter / inner-product queries, snapshot/restore, and
/// introspection — everything the daemon does between a decoded request
/// frame and an encoded response frame. Transport-free by design: the
/// connection loop, the epoll event loop, the loopback tests, and the
/// fuzz harness all drive the same HandleFrame/HandleFrames entry points.
///
/// Concurrency model (see DESIGN.md "Server"): the registry is striped by
/// name hash — create/drop take only their stripe's mutex — and every
/// entry carries its own SharedMutex. Read-only operations (point and
/// batched point queries, heavy hitters, inner products, snapshot, list,
/// statsz) take the entry lock *shared*, so they run concurrently with
/// each other; only ingest/create/drop/restore take it exclusively. Lock
/// order: stripe mutex is never held across an entry lock, and the
/// inner-product path acquires its two entry locks in increasing
/// address order.

namespace sketch::server {

namespace internal {

/// One named sketch in the registry. Subclasses adapt each sketch family
/// to the uniform request surface; operations a family cannot support
/// (heavy hitters on a flat Count-Min, inner product on a Bloom filter)
/// return an error response instead of being absent from the vtable, so
/// the protocol surface is total.
///
/// Locking contract: Ingest is only called under the owning handle's
/// exclusive lock; every other method may be called under a shared lock
/// from many threads at once, so it must not mutate state visible outside
/// an internal mutex (ShardedCountMinEntry's materialization cache is the
/// one such case).
class SketchEntry {
 public:
  virtual ~SketchEntry() = default;

  virtual SketchType type() const = 0;

  /// Applies a batch. Returns false (with *error filled) if the batch is
  /// invalid for this family — e.g. items outside a StreamSummary's
  /// universe, which would otherwise trip a debug assertion downstream.
  virtual bool Ingest(UpdateSpan updates, ErrorResponse* error) = 0;

  /// Point estimate plus the family's error bound (Minton & Price style:
  /// the server reports the scale of the noise, not just the estimate).
  virtual PointValueResponse PointQuery(uint64_t item) = 0;

  /// Batched point query: one value per item, in order, each identical to
  /// what PointQuery would return. The base implementation loops;
  /// CountMin/CountSketch entries override with the EstimateBatch kernel
  /// (SIMD-tier bucket computation, error bound computed once per batch).
  virtual void PointQueryBatch(const std::vector<uint64_t>& items,
                               std::vector<PointValueResponse>* out) {
    out->reserve(items.size());
    for (uint64_t item : items) out->push_back(PointQuery(item));
  }

  virtual bool HeavyHitters(double phi, std::vector<uint64_t>* out,
                            ErrorResponse* error) = 0;

  virtual bool InnerProduct(SketchEntry& other, int64_t* result,
                            ErrorResponse* error) = 0;

  virtual std::vector<uint8_t> Snapshot() = 0;

  /// Downcast hooks for inner products (a sharded entry materializes its
  /// collapsed sketch).
  virtual const CountMinSketch* AsCountMin() { return nullptr; }
  virtual const CountSketch* AsCountSketch() { return nullptr; }

  virtual uint64_t SizeInCounters() const = 0;
  virtual uint64_t MemoryFootprintBytes() const = 0;

  /// Structured self-description of the wrapped sketch (occupancy,
  /// collision estimates, geometry — see telemetry/stats.h). Called under
  /// a shared lock by statsz and the health monitor, so implementations
  /// must not mutate entry state.
  virtual StatsSnapshot Introspect() const = 0;

  uint64_t updates_applied() const { return updates_applied_; }

 protected:
  uint64_t updates_applied_ = 0;
};

/// A registry slot: the entry plus its reader-writer lock. Handles are
/// held by shared_ptr so a query that found the entry before a concurrent
/// drop finishes against live storage; the slot is destroyed when the
/// last reference drops.
struct EntryHandle {
  explicit EntryHandle(std::unique_ptr<SketchEntry> e)
      : entry(std::move(e)) {}

  mutable SharedMutex mutex;
  std::unique_ptr<SketchEntry> entry SKETCH_GUARDED_BY(mutex);
};

}  // namespace internal

/// The registry + request dispatcher. Thread-safe: HandleFrame and
/// HandleFrames may be called concurrently from any number of connection
/// or event-loop threads. Queries serialize only against ingest on the
/// same entry, never against each other (ShardedSketch still requires
/// externally serialized *Ingest* calls, which the per-entry exclusive
/// lock provides; parallelism lives inside an ingest, across the shard
/// replicas, and across entries/queries).
class SketchService {
 public:
  struct Options {
    /// Shard replicas for kShardedCountMin sketches; also the pool the
    /// ingest fan-out runs on. A null pool runs shards inline.
    ThreadPool* pool = nullptr;
    std::size_t default_shards = 4;
    /// Oracle mode for tests/benchmarks: take every entry lock
    /// exclusively, restoring the PR5 one-writer-at-a-time behavior so
    /// shared-lock runs can be diffed against it.
    bool exclusive_queries = false;
    /// Slowest requests retained per opcode in the slow-query log
    /// (surfaced in /statsz and /tracez); 0 disables the log and its
    /// per-request clock reads in telemetry-off builds.
    std::size_t slow_query_log_size = 8;
  };

  explicit SketchService(const Options& options)
      : options_(options), slow_log_(options.slow_query_log_size) {}

  /// Dispatches one decoded request frame and returns the encoded
  /// response frame. Never aborts on malformed payloads: every validation
  /// failure becomes a kError response.
  std::vector<uint8_t> HandleFrame(const Frame& frame);

  /// Dispatches a run of frames that were already queued on one
  /// connection, appending one response per frame, in order. Consecutive
  /// kIngest frames for the same sketch are applied under a single
  /// registry lookup + exclusive entry lock (the per-connection dispatch
  /// batching of E26); every other frame goes through HandleFrame.
  void HandleFrames(const std::vector<Frame>& frames,
                    std::vector<std::vector<uint8_t>>* responses);

  /// True once a kShutdown request has been handled.
  bool shutdown_requested() const {
    return shutdown_.load(std::memory_order_acquire);
  }

  /// Registry size (tests / statsz).
  std::size_t sketch_count() const;

  /// Registers a pull-gauge reported in the statsz JSON under "gauges"
  /// (e.g. the event loop's live-connection count). The callback must be
  /// thread-safe and outlive the service.
  void RegisterGauge(const std::string& name,
                     std::function<uint64_t()> gauge);

  /// The statsz JSON body (what kStatsz returns); also served over HTTP
  /// by http_exposition. Includes the slow-query log under
  /// "slow_queries".
  std::string StatszJson();

  /// Calls `fn(name, entry)` for every registered sketch, one entry
  /// shared lock at a time (never a stripe mutex and an entry lock
  /// together — the documented health-monitor lock order). `fn` must not
  /// mutate the entry.
  void ForEachSketch(
      const std::function<void(const std::string&,
                               const internal::SketchEntry&)>& fn) const;

  /// The slow-query log (exposition surfaces; tests).
  const SlowQueryLog& slow_query_log() const { return slow_log_; }

  /// Registry stripes (shard-by-name-hash granularity of create/drop).
  static constexpr std::size_t kRegistryStripes = 16;

 private:
  struct RegistryStripe {
    mutable Mutex mutex;
    std::map<std::string, std::shared_ptr<internal::EntryHandle>> entries
        SKETCH_GUARDED_BY(mutex);
  };

  std::vector<uint8_t> DispatchFrame(const Frame& frame);

  std::vector<uint8_t> HandleCreate(const Frame& frame);
  std::vector<uint8_t> HandleDrop(const NamedRequest& request);
  std::vector<uint8_t> HandleIngest(const Frame& frame);
  std::vector<uint8_t> HandlePointQuery(const Frame& frame);
  std::vector<uint8_t> HandlePointQueryBatch(const Frame& frame);
  std::vector<uint8_t> HandleHeavyHitters(const Frame& frame);
  std::vector<uint8_t> HandleInnerProduct(const Frame& frame);
  std::vector<uint8_t> HandleSnapshot(const NamedRequest& request);
  std::vector<uint8_t> HandleRestore(const Frame& frame);
  std::vector<uint8_t> HandleList();
  std::vector<uint8_t> HandleStatsz();
  std::vector<uint8_t> HandleTraceDump();

  /// Applies a run of already-decoded ingest requests for one sketch
  /// under a single exclusive entry lock, appending one ack/error per
  /// request.
  void ApplyIngestRun(const std::vector<IngestRequest>& run,
                      std::vector<std::vector<uint8_t>>* responses);

  const RegistryStripe& StripeFor(const std::string& name) const;
  RegistryStripe& StripeFor(const std::string& name);

  /// Stripe-locked registry lookup; nullptr if absent. Takes only the
  /// stripe mutex, never an entry lock.
  std::shared_ptr<internal::EntryHandle> FindHandle(
      const std::string& name) const;

  /// Runs `fn(entry)` under the entry's shared lock (exclusive in
  /// exclusive_queries oracle mode); NoSuchSketch if absent.
  template <typename Fn>
  std::vector<uint8_t> WithEntryShared(const std::string& name, Fn&& fn);

  /// Runs `fn(entry)` under the entry's exclusive lock; NoSuchSketch if
  /// absent.
  template <typename Fn>
  std::vector<uint8_t> WithEntryExclusive(const std::string& name, Fn&& fn);

  /// Inserts `entry` under `name`; false if the name is already taken
  /// (entry is destroyed in that case).
  bool InsertEntry(const std::string& name,
                   std::unique_ptr<internal::SketchEntry> entry);

  /// Builds an entry from validated create parameters; nullptr + *error
  /// on invalid geometry.
  std::unique_ptr<internal::SketchEntry> BuildEntry(
      const CreateSketchRequest& request, ErrorResponse* error);

  /// Builds an entry from a validated snapshot blob. The blob must have
  /// passed CheckSketchBlob already (this call runs the CHECK-validating
  /// Deserialize).
  std::unique_ptr<internal::SketchEntry> BuildEntryFromBlob(
      SketchType type, const std::vector<uint8_t>& blob);

  Options options_;
  SlowQueryLog slow_log_;
  // Registry stripes: create/drop/lookup for a name only contend within
  // its hash stripe. Entry state is guarded by each EntryHandle's own
  // SharedMutex, never by a stripe mutex.
  std::array<RegistryStripe, kRegistryStripes> stripes_;
  std::atomic<bool> shutdown_{false};
  mutable Mutex gauges_mutex_;
  std::vector<std::pair<std::string, std::function<uint64_t()>>> gauges_
      SKETCH_GUARDED_BY(gauges_mutex_);
};

}  // namespace sketch::server

#endif  // SKETCH_SERVER_SKETCH_SERVICE_H_
