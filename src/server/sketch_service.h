#ifndef SKETCH_SERVER_SKETCH_SERVICE_H_
#define SKETCH_SERVER_SKETCH_SERVICE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "server/protocol.h"
#include "sketch/bloom_filter.h"
#include "sketch/count_min.h"
#include "sketch/count_sketch.h"
#include "sketch/stream_summary.h"
#include "stream/update.h"

/// \file
/// The sketch-as-a-service registry: named sketches, batched ingest,
/// point / heavy-hitter / inner-product queries, snapshot/restore, and
/// introspection — everything the daemon does between a decoded request
/// frame and an encoded response frame. Transport-free by design: the
/// connection loop, the loopback tests, and the fuzz harness all drive
/// the same HandleFrame entry point.

namespace sketch::server {

namespace internal {

/// One named sketch in the registry. Subclasses adapt each sketch family
/// to the uniform request surface; operations a family cannot support
/// (heavy hitters on a flat Count-Min, inner product on a Bloom filter)
/// return an error response instead of being absent from the vtable, so
/// the protocol surface is total.
class SketchEntry {
 public:
  virtual ~SketchEntry() = default;

  virtual SketchType type() const = 0;

  /// Applies a batch. Returns false (with *error filled) if the batch is
  /// invalid for this family — e.g. items outside a StreamSummary's
  /// universe, which would otherwise trip a debug assertion downstream.
  virtual bool Ingest(UpdateSpan updates, ErrorResponse* error) = 0;

  /// Point estimate plus the family's error bound (Minton & Price style:
  /// the server reports the scale of the noise, not just the estimate).
  virtual PointValueResponse PointQuery(uint64_t item) = 0;

  virtual bool HeavyHitters(double phi, std::vector<uint64_t>* out,
                            ErrorResponse* error) = 0;

  virtual bool InnerProduct(SketchEntry& other, int64_t* result,
                            ErrorResponse* error) = 0;

  virtual std::vector<uint8_t> Snapshot() = 0;

  /// Downcast hooks for inner products (a sharded entry materializes its
  /// collapsed sketch).
  virtual const CountMinSketch* AsCountMin() { return nullptr; }
  virtual const CountSketch* AsCountSketch() { return nullptr; }

  virtual uint64_t SizeInCounters() const = 0;
  virtual uint64_t MemoryFootprintBytes() const = 0;

  uint64_t updates_applied() const { return updates_applied_; }

 protected:
  uint64_t updates_applied_ = 0;
};

}  // namespace internal

/// The registry + request dispatcher. Thread-safe: HandleFrame may be
/// called concurrently from any number of connection threads; a single
/// service mutex serializes access to the registry and the sketches
/// (ShardedSketch requires externally serialized calls — parallelism
/// lives *inside* an Ingest, across the shard replicas, not across
/// requests).
class SketchService {
 public:
  struct Options {
    /// Shard replicas for kShardedCountMin sketches; also the pool the
    /// ingest fan-out runs on. A null pool runs shards inline.
    ThreadPool* pool = nullptr;
    std::size_t default_shards = 4;
  };

  explicit SketchService(const Options& options) : options_(options) {}

  /// Dispatches one decoded request frame and returns the encoded
  /// response frame. Never aborts on malformed payloads: every validation
  /// failure becomes a kError response.
  std::vector<uint8_t> HandleFrame(const Frame& frame)
      SKETCH_EXCLUDES(mutex_);

  /// True once a kShutdown request has been handled.
  bool shutdown_requested() const SKETCH_EXCLUDES(mutex_);

  /// Registry size (tests / statsz).
  std::size_t sketch_count() const SKETCH_EXCLUDES(mutex_);

 private:
  std::vector<uint8_t> HandleCreate(const Frame& frame)
      SKETCH_EXCLUDES(mutex_);
  std::vector<uint8_t> HandleDrop(const NamedRequest& request)
      SKETCH_EXCLUDES(mutex_);
  std::vector<uint8_t> HandleIngest(const Frame& frame)
      SKETCH_EXCLUDES(mutex_);
  std::vector<uint8_t> HandlePointQuery(const Frame& frame)
      SKETCH_EXCLUDES(mutex_);
  std::vector<uint8_t> HandleHeavyHitters(const Frame& frame)
      SKETCH_EXCLUDES(mutex_);
  std::vector<uint8_t> HandleInnerProduct(const Frame& frame)
      SKETCH_EXCLUDES(mutex_);
  std::vector<uint8_t> HandleSnapshot(const NamedRequest& request)
      SKETCH_EXCLUDES(mutex_);
  std::vector<uint8_t> HandleRestore(const Frame& frame)
      SKETCH_EXCLUDES(mutex_);
  std::vector<uint8_t> HandleList() SKETCH_EXCLUDES(mutex_);
  std::vector<uint8_t> HandleStatsz() SKETCH_EXCLUDES(mutex_);
  std::vector<uint8_t> HandleTraceDump();

  /// Registry lookup with the service mutex held; nullptr if absent.
  internal::SketchEntry* FindEntryLocked(const std::string& name)
      SKETCH_REQUIRES(mutex_);

  /// Inserts `entry` under `name` with the service mutex held; false if
  /// the name is already taken (entry is destroyed in that case).
  bool InsertEntryLocked(const std::string& name,
                         std::unique_ptr<internal::SketchEntry> entry)
      SKETCH_REQUIRES(mutex_);

  /// Builds an entry from validated create parameters; nullptr + *error
  /// on invalid geometry.
  std::unique_ptr<internal::SketchEntry> BuildEntry(
      const CreateSketchRequest& request, ErrorResponse* error);

  /// Builds an entry from a validated snapshot blob. The blob must have
  /// passed CheckSketchBlob already (this call runs the CHECK-validating
  /// Deserialize).
  std::unique_ptr<internal::SketchEntry> BuildEntryFromBlob(
      SketchType type, const std::vector<uint8_t>& blob);

  Options options_;
  mutable Mutex mutex_;
  // The one service lock: entries themselves are unsynchronized (see the
  // class comment), so both the map and every entry it owns are only
  // touched with mutex_ held.
  std::map<std::string, std::unique_ptr<internal::SketchEntry>> sketches_
      SKETCH_GUARDED_BY(mutex_);
  bool shutdown_ SKETCH_GUARDED_BY(mutex_) = false;
};

}  // namespace sketch::server

#endif  // SKETCH_SERVER_SKETCH_SERVICE_H_
