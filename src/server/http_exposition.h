#ifndef SKETCH_SERVER_HTTP_EXPOSITION_H_
#define SKETCH_SERVER_HTTP_EXPOSITION_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>

#include "server/transport.h"

/// \file
/// Minimal HTTP/1.0 exposition listener for scrapers and humans.
///
/// The sketchwire port speaks a binary protocol; Prometheus, curl, and
/// load-balancer health checks speak HTTP. Rather than multiplex the two
/// on one socket, the daemon opens a second, off-by-default port that
/// serves exactly four read-only endpoints:
///
///   GET /metrics  Prometheus text exposition format (version 0.0.4)
///   GET /statsz   the same JSON body as the sketchwire kStatsz opcode
///   GET /tracez   Chrome-trace JSON of the telemetry span buffer plus
///                 the slow-query log (load in Perfetto)
///   GET /healthz  {"status":"ok"|"degraded",...}; HTTP 503 when degraded
///
/// Deliberately not a web server: one accept thread serves one request
/// per connection, HTTP/1.0 close-delimited, GET only, no keep-alive, no
/// TLS, no chunking. A scrape every few seconds and the occasional curl
/// are the design load; anything heavier belongs behind a real proxy.
/// Handler callbacks run on the accept thread, so they must be safe to
/// call from a non-request thread (all four producers here only take
/// snapshots under their own locks).

namespace sketch::server {

class HttpExposition {
 public:
  /// Response producers, one per endpoint. Unset handlers 404. `healthy`
  /// picks /healthz's status code (200 vs 503); defaults to healthy.
  struct Handlers {
    std::function<std::string()> metrics;
    std::function<std::string()> statsz;
    std::function<std::string()> tracez;
    std::function<std::string()> healthz;
    std::function<bool()> healthy;
  };

  explicit HttpExposition(Handlers handlers)
      : handlers_(std::move(handlers)) {}
  ~HttpExposition() { Stop(); }

  HttpExposition(const HttpExposition&) = delete;
  HttpExposition& operator=(const HttpExposition&) = delete;

  /// Binds 127.0.0.1:`port` (0 picks a free port; see port()) and starts
  /// the accept thread. Returns false if the bind fails.
  bool Start(uint16_t port);

  /// Closes the listener and joins the accept thread (idempotent).
  void Stop();

  /// Bound port after a successful Start.
  uint16_t port() const { return listener_ ? listener_->port() : 0; }

  /// Dispatches one already-parsed request and returns the full HTTP
  /// response bytes. Exposed for tests (no socket needed) and used
  /// verbatim by the accept loop.
  std::string HandleRequest(const std::string& method,
                            const std::string& path) const;

 private:
  void AcceptLoop();
  void ServeConnection(ByteStream* stream) const;

  const Handlers handlers_;
  std::unique_ptr<SocketListener> listener_;
  std::thread thread_;
};

}  // namespace sketch::server

#endif  // SKETCH_SERVER_HTTP_EXPOSITION_H_
