// Terminal dashboard for a running sketch daemon: polls the HTTP
// /metrics endpoint (see --http-port on sketch_serverd) and redraws a
// compact live view — request rate, per-opcode latency quantiles, slow
// client evictions, and per-sketch health — once per interval. No curses:
// the screen is redrawn with ANSI clear-home, which every terminal that
// can run the daemon also supports; --plain drops the escape codes so the
// output can be piped or captured.
//
// Usage:
//   sketch_top --port=N [--host=127.0.0.1] [--interval-ms=1000]
//              [--iterations=0] [--plain]
//
// --iterations=N exits after N polls (0 = run until interrupted); the
// smoke test runs one iteration in --plain mode.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/timer.h"
#include "server/transport.h"

namespace {

using sketch::server::ByteStream;
using sketch::server::ConnectTcp;
using sketch::server::WriteAll;

struct Config {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  uint64_t interval_ms = 1000;
  uint64_t iterations = 0;  // 0 = forever
  bool plain = false;
};

bool ParseFlag(const std::string& arg, const std::string& name,
               std::string* value) {
  const std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

/// One parsed exposition sample: metric name, raw label block (without
/// braces, escapes left as-is), value.
struct Sample {
  std::string name;
  std::string labels;
  double value = 0.0;
};

/// GET `path` and return the response body, or false on any transport or
/// HTTP failure. HTTP/1.0 close-delimited: read to EOF, split on the
/// blank line.
bool HttpGet(const Config& config, const std::string& path,
             std::string* body) {
  std::unique_ptr<ByteStream> stream = ConnectTcp(config.host, config.port);
  if (stream == nullptr) return false;
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  if (!WriteAll(stream.get(),
                reinterpret_cast<const uint8_t*>(request.data()),
                request.size())) {
    return false;
  }
  std::string response;
  uint8_t chunk[4096];
  while (true) {
    const std::ptrdiff_t n = stream->Read(chunk, sizeof(chunk));
    if (n < 0) return false;
    if (n == 0) break;
    response.append(reinterpret_cast<const char*>(chunk),
                    static_cast<std::size_t>(n));
  }
  const std::size_t split = response.find("\r\n\r\n");
  if (split == std::string::npos) return false;
  if (response.rfind("HTTP/1.0 200", 0) != 0 &&
      response.rfind("HTTP/1.1 200", 0) != 0) {
    return false;
  }
  *body = response.substr(split + 4);
  return true;
}

/// Parses Prometheus text exposition lines into samples. Comment/TYPE
/// lines are skipped; histogram buckets come through like any other
/// sample (their name ends in _bucket and carries an `le` label).
std::vector<Sample> ParseExposition(const std::string& body) {
  std::vector<Sample> samples;
  std::size_t pos = 0;
  while (pos < body.size()) {
    std::size_t end = body.find('\n', pos);
    if (end == std::string::npos) end = body.size();
    const std::string line = body.substr(pos, end - pos);
    pos = end + 1;
    if (line.empty() || line[0] == '#') continue;
    Sample sample;
    std::size_t cursor = line.find('{');
    const std::size_t space = line.find(' ');
    if (space == std::string::npos) continue;
    if (cursor != std::string::npos && cursor < space) {
      sample.name = line.substr(0, cursor);
      // The label block may contain escaped quotes; scan for the closing
      // brace outside a quoted string.
      bool in_string = false;
      std::size_t close = cursor + 1;
      for (; close < line.size(); ++close) {
        const char c = line[close];
        if (in_string && c == '\\') {
          ++close;  // skip the escaped character
        } else if (c == '"') {
          in_string = !in_string;
        } else if (!in_string && c == '}') {
          break;
        }
      }
      if (close >= line.size()) continue;
      sample.labels = line.substr(cursor + 1, close - cursor - 1);
      sample.value = std::atof(line.c_str() + close + 1);
    } else {
      sample.name = line.substr(0, space);
      sample.value = std::atof(line.c_str() + space + 1);
    }
    samples.push_back(std::move(sample));
  }
  return samples;
}

/// First sample matching name (and, when non-null, a labels substring);
/// fallback when absent.
double Find(const std::vector<Sample>& samples, const std::string& name,
            const char* labels_contains, double fallback) {
  for (const Sample& s : samples) {
    if (s.name != name) continue;
    if (labels_contains != nullptr &&
        s.labels.find(labels_contains) == std::string::npos) {
      continue;
    }
    return s.value;
  }
  return fallback;
}

/// Extracts the value of one label from a raw label block, unescaping.
std::string LabelValue(const std::string& labels, const std::string& key) {
  const std::string prefix = key + "=\"";
  const std::size_t start = labels.find(prefix);
  if (start == std::string::npos) return "";
  std::string out;
  for (std::size_t i = start + prefix.size(); i < labels.size(); ++i) {
    const char c = labels[i];
    if (c == '\\' && i + 1 < labels.size()) {
      const char next = labels[++i];
      out += next == 'n' ? '\n' : next;
    } else if (c == '"') {
      break;
    } else {
      out += c;
    }
  }
  return out;
}

void DrawFrame(const Config& config, const std::vector<Sample>& samples,
               double qps, double ingest_rate) {
  if (!config.plain) std::printf("\x1b[H\x1b[2J");
  std::printf("sketch_top — %s:%u  (interval %llu ms)\n\n",
              config.host.c_str(), config.port,
              static_cast<unsigned long long>(config.interval_ms));
  std::printf("  frames/s   %10.1f    updates/s  %12.1f\n", qps, ingest_rate);
  std::printf("  evictions  %10.0f    framing errors %8.0f\n\n",
              Find(samples, "server_epoll_slow_clients_evicted_total",
                   nullptr, 0.0),
              Find(samples, "server_connections_framing_error_total", nullptr,
                   0.0));

  // Per-opcode latency quantiles from the summary families.
  std::printf("  %-24s %12s %12s\n", "opcode", "p50 (us)", "p99 (us)");
  const char* kOps[] = {"Ingest", "PointQuery", "PointQueryBatch",
                        "HeavyHitters", "InnerProduct", "Snapshot",
                        "Restore"};
  for (const char* op : kOps) {
    const std::string family =
        std::string("server_latency_ns_") + op + "_summary";
    bool present = false;
    for (const Sample& s : samples) {
      if (s.name == family) {
        present = true;
        break;
      }
    }
    if (!present) continue;
    std::printf("  %-24s %12.1f %12.1f\n", op,
                Find(samples, family, "quantile=\"0.5\"", 0.0) / 1e3,
                Find(samples, family, "quantile=\"0.99\"", 0.0) / 1e3);
  }

  // Per-sketch health gauges (absent until the daemon's health monitor
  // has completed a pass).
  std::printf("\n  %-20s %10s %10s %10s %10s  %s\n", "sketch", "occup",
              "collide", "saturate", "drift", "state");
  for (const Sample& s : samples) {
    if (s.name != "sketch_health_occupancy") continue;
    const std::string sketch = LabelValue(s.labels, "sketch");
    const char* needle = s.labels.c_str();
    const double collide =
        Find(samples, "sketch_health_collision_rate", needle, 0.0);
    const double saturate =
        Find(samples, "sketch_health_saturation", needle, 0.0);
    const double drift =
        Find(samples, "sketch_health_eps_drift", needle, 0.0);
    const bool degraded =
        Find(samples, "sketch_health_degraded", needle, 0.0) != 0.0;
    std::printf("  %-20s %10.3f %10.3f %10.4f %10.3f  %s\n", sketch.c_str(),
                s.value, collide, saturate, drift,
                degraded ? "DEGRADED" : "ok");
  }
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  Config config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (ParseFlag(arg, "host", &value)) {
      config.host = value;
    } else if (ParseFlag(arg, "port", &value)) {
      config.port = static_cast<uint16_t>(std::atoi(value.c_str()));
    } else if (ParseFlag(arg, "interval-ms", &value)) {
      config.interval_ms = static_cast<uint64_t>(std::atoll(value.c_str()));
    } else if (ParseFlag(arg, "iterations", &value)) {
      config.iterations = static_cast<uint64_t>(std::atoll(value.c_str()));
    } else if (arg == "--plain") {
      config.plain = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s --port=N [--host=H] [--interval-ms=N] "
                   "[--iterations=N] [--plain]\n",
                   argv[0]);
      return 2;
    }
  }
  if (config.port == 0) {
    std::fprintf(stderr, "sketch_top: need --port (the daemon's HTTP port)\n");
    return 2;
  }

  double prev_frames = -1.0;
  double prev_updates = -1.0;
  uint64_t prev_ns = 0;
  for (uint64_t tick = 0; config.iterations == 0 || tick < config.iterations;
       ++tick) {
    std::string body;
    if (!HttpGet(config, "/metrics", &body)) {
      std::fprintf(stderr, "sketch_top: cannot scrape %s:%u/metrics\n",
                   config.host.c_str(), config.port);
      return 1;
    }
    const uint64_t now_ns = sketch::MonotonicNowNs();
    const std::vector<Sample> samples = ParseExposition(body);
    const double frames =
        Find(samples, "server_frames_handled_total", nullptr, 0.0);
    const double updates =
        Find(samples, "server_updates_ingested_total", nullptr, 0.0);
    double qps = 0.0;
    double ingest_rate = 0.0;
    if (prev_frames >= 0.0 && now_ns > prev_ns) {
      const double dt = static_cast<double>(now_ns - prev_ns) / 1e9;
      qps = std::max(0.0, (frames - prev_frames) / dt);
      ingest_rate = std::max(0.0, (updates - prev_updates) / dt);
    }
    prev_frames = frames;
    prev_updates = updates;
    prev_ns = now_ns;
    DrawFrame(config, samples, qps, ingest_rate);
    if (config.iterations != 0 && tick + 1 == config.iterations) break;
    std::this_thread::sleep_for(
        std::chrono::milliseconds(config.interval_ms));
  }
  return 0;
}
