#include "server/health_monitor.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>

#include "telemetry/telemetry.h"

namespace sketch::server {

namespace {

constexpr double kEuler = 2.718281828459045;

/// Worst-case scalars over a snapshot tree: composites (sharded,
/// stream-summary, dyadic) report per-component fields on their children,
/// and the health of the whole is its worst component.
struct TreeStats {
  double max_occupancy = 0.0;
  double max_collision = 0.0;
  uint64_t nonzero_cells = 0;
  uint64_t saturated_cells = 0;
};

void Accumulate(const StatsSnapshot& snapshot, TreeStats* stats) {
  stats->max_occupancy = std::max(
      stats->max_occupancy,
      std::max(snapshot.FieldOr("occupied_fraction", 0.0),
               snapshot.FieldOr("fill_ratio", 0.0)));  // Bloom spelling
  stats->max_collision =
      std::max(stats->max_collision,
               snapshot.FieldOr("estimated_collision_rate", 0.0));
  // Saturation: nonzero cells whose magnitude is within 2 doublings of
  // the int64 limit. One more heavy batch can overflow them, after which
  // every estimate that touches the cell is garbage.
  for (std::size_t b = 1; b < snapshot.occupancy_log2.size(); ++b) {
    stats->nonzero_cells += snapshot.occupancy_log2[b];
    if (b >= 62) stats->saturated_cells += snapshot.occupancy_log2[b];
  }
  for (const StatsSnapshot& child : snapshot.children) {
    Accumulate(child, stats);
  }
}

void AppendReason(std::string* reasons, const char* reason) {
  if (!reasons->empty()) *reasons += ",";
  *reasons += reason;
}

}  // namespace

SketchHealth HealthMonitor::Evaluate(const std::string& name,
                                     const StatsSnapshot& snapshot,
                                     const Options& options) {
  TreeStats stats;
  Accumulate(snapshot, &stats);

  SketchHealth health;
  health.name = name;
  health.type = snapshot.type;
  health.occupancy = stats.max_occupancy;
  health.collision_rate = stats.max_collision;
  health.saturation =
      stats.nonzero_cells == 0
          ? 0.0
          : static_cast<double>(stats.saturated_cells) /
                static_cast<double>(stats.nonzero_cells);
  // See the file comment in health_monitor.h for the model behind this
  // ratio; an empty sketch has no drift by definition.
  health.eps_drift = stats.max_occupancy <= 0.0
                         ? 0.0
                         : stats.max_collision / (kEuler * stats.max_occupancy);

  if (health.occupancy > options.max_occupancy) {
    AppendReason(&health.reasons, "occupancy");
  }
  if (health.collision_rate > options.max_collision_rate) {
    AppendReason(&health.reasons, "collision_rate");
  }
  if (health.saturation > options.max_saturation) {
    AppendReason(&health.reasons, "saturation");
  }
  if (health.eps_drift > options.max_eps_drift) {
    AppendReason(&health.reasons, "eps_drift");
  }
  health.degraded = !health.reasons.empty();
  return health;
}

void HealthMonitor::RunOnce() {
  std::vector<SketchHealth> results;
  service_->ForEachSketch(
      [&results, this](const std::string& name,
                       const internal::SketchEntry& entry) {
        results.push_back(Evaluate(name, entry.Introspect(), options_));
      });
  bool any_degraded = false;
  for (const SketchHealth& health : results) {
    if (health.degraded) any_degraded = true;
  }
  SKETCH_COUNTER_INC("server.health.passes");
  {
    MutexLock lock(mu_);
    latest_ = std::move(results);
  }
  // relaxed: see degraded() — an independent advisory flag.
  degraded_.store(any_degraded, std::memory_order_relaxed);
}

void HealthMonitor::Start() {
  {
    MutexLock lock(mu_);
    if (running_) return;
    running_ = true;
    stop_requested_ = false;
  }
  thread_ = std::thread([this] { ThreadBody(); });
}

void HealthMonitor::Stop() {
  {
    MutexLock lock(mu_);
    if (!running_) return;
    stop_requested_ = true;
  }
  wakeup_.NotifyAll();
  if (thread_.joinable()) thread_.join();
  MutexLock lock(mu_);
  running_ = false;
}

void HealthMonitor::ThreadBody() {
  const auto period = std::chrono::milliseconds(options_.period_ms);
  for (;;) {
    RunOnce();
    MutexLock lock(mu_);
    if (stop_requested_) return;
    // Single timed wait, not a deadline loop: waking early on a spurious
    // signal only means one extra (cheap) pass.
    if (!stop_requested_) wakeup_.WaitFor(mu_, period);
    if (stop_requested_) return;
  }
}

std::vector<SketchHealth> HealthMonitor::Snapshot() const {
  MutexLock lock(mu_);
  return latest_;
}

std::vector<telemetry::PromGauge> HealthMonitor::Gauges() const {
  const std::vector<SketchHealth> latest = Snapshot();
  std::vector<telemetry::PromGauge> gauges;
  gauges.reserve(latest.size() * 5 + 1);
  const auto add = [&gauges](const char* metric, const SketchHealth& health,
                             double value) {
    telemetry::PromGauge gauge;
    gauge.name = metric;
    gauge.labels.push_back({"sketch", health.name});
    gauge.value = value;
    gauges.push_back(std::move(gauge));
  };
  // Grouped metric-major so each family's samples are contiguous, as the
  // exposition format requires.
  for (const SketchHealth& h : latest) {
    add("sketch_health_occupancy", h, h.occupancy);
  }
  for (const SketchHealth& h : latest) {
    add("sketch_health_collision_rate", h, h.collision_rate);
  }
  for (const SketchHealth& h : latest) {
    add("sketch_health_saturation", h, h.saturation);
  }
  for (const SketchHealth& h : latest) {
    add("sketch_health_eps_drift", h, h.eps_drift);
  }
  for (const SketchHealth& h : latest) {
    add("sketch_health_degraded", h, h.degraded ? 1.0 : 0.0);
  }
  telemetry::PromGauge overall;
  overall.name = "server_health_degraded";
  overall.value = degraded() ? 1.0 : 0.0;
  gauges.push_back(std::move(overall));
  return gauges;
}

std::string HealthMonitor::HealthzJson() const {
  const std::vector<SketchHealth> latest = Snapshot();
  std::string out = "{\"status\":\"";
  out += degraded() ? "degraded" : "ok";
  out += "\",\"sketches\":[";
  bool first = true;
  for (const SketchHealth& health : latest) {
    if (!health.degraded) continue;
    if (!first) out += ",";
    first = false;
    // Health names come from the registry (validated request strings);
    // escape quotes/backslashes, drop control bytes.
    std::string escaped;
    for (char c : health.name) {
      if (c == '"' || c == '\\') {
        escaped += '\\';
        escaped += c;
      } else if (static_cast<unsigned char>(c) >= 0x20) {
        escaped += c;
      }
    }
    out += "{\"name\":\"" + escaped + "\",\"reasons\":\"" + health.reasons +
           "\"}";
  }
  out += "]}";
  return out;
}

}  // namespace sketch::server
