#include "server/slow_query_log.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "common/timer.h"

namespace sketch::server {

namespace {

/// Min-heap comparator: the cheapest retained entry sits at the top,
/// ready to be displaced by a slower newcomer.
bool SlowerThan(const SlowQueryLog::Entry& a, const SlowQueryLog::Entry& b) {
  return a.latency_ns > b.latency_ns;
}

}  // namespace

void SlowQueryLog::Record(Opcode opcode, uint64_t latency_ns,
                          std::string_view sketch_name,
                          std::size_t payload_bytes, uint64_t trace_id) {
  if (capacity_ == 0) return;
  Slot& slot = slots_[SlotOf(opcode)];
  // relaxed: advisory fast-reject. A stale floor only lets a borderline
  // offer through to the locked path (which re-checks) or drops an offer
  // that would have tied the current minimum — never corrupts the heap.
  if (latency_ns <= slot.floor.load(std::memory_order_relaxed)) return;
  MutexLock lock(slot.mu);
  if (slot.heap.size() == capacity_ &&
      latency_ns <= slot.heap.front().latency_ns) {
    return;  // lost the race to a slower offer
  }
  Entry entry;
  entry.opcode = opcode;
  entry.latency_ns = latency_ns;
  entry.sketch_name.assign(sketch_name.data(), sketch_name.size());
  entry.payload_bytes = payload_bytes;
  entry.trace_id = trace_id;
  entry.timestamp_ns = MonotonicNowNs();
  if (slot.heap.size() == capacity_) {
    std::pop_heap(slot.heap.begin(), slot.heap.end(), SlowerThan);
    slot.heap.back() = std::move(entry);
  } else {
    slot.heap.push_back(std::move(entry));
  }
  std::push_heap(slot.heap.begin(), slot.heap.end(), SlowerThan);
  if (slot.heap.size() == capacity_) {
    // relaxed: same advisory contract as the load above.
    slot.floor.store(slot.heap.front().latency_ns, std::memory_order_relaxed);
  }
}

std::vector<SlowQueryLog::Entry> SlowQueryLog::SnapshotSorted() const {
  std::vector<Entry> out;
  for (const Slot& slot : slots_) {
    MutexLock lock(slot.mu);
    out.insert(out.end(), slot.heap.begin(), slot.heap.end());
  }
  std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
    return a.latency_ns > b.latency_ns;
  });
  return out;
}

std::string SlowQueryLog::ToJson() const {
  const std::vector<Entry> entries = SnapshotSorted();
  const uint64_t now_ns = MonotonicNowNs();
  std::string out = "[";
  // Large enough for a fully-escaped kMaxNameBytes name plus the numeric
  // fields; snprintf truncation would emit invalid JSON.
  char buffer[kMaxNameBytes * 2 + 192];
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Entry& entry = entries[i];
    if (i > 0) out += ",";
    // Sketch names are validated request strings but may still hold JSON
    // metacharacters; keep this quoting in sync with the service's
    // EscapeJson (simple backslash quoting of " and \, controls dropped).
    std::string escaped_name;
    for (char c : entry.sketch_name) {
      if (c == '"' || c == '\\') {
        escaped_name += '\\';
        escaped_name += c;
      } else if (static_cast<unsigned char>(c) >= 0x20) {
        escaped_name += c;
      }
    }
    const int written = std::snprintf(
        buffer, sizeof(buffer),
        "{\"opcode\":\"%s\",\"latency_ns\":%" PRIu64
        ",\"sketch\":\"%s\",\"payload_bytes\":%" PRIu64
        ",\"trace_id\":\"%016" PRIx64 "\",\"age_ns\":%" PRIu64 "}",
        OpcodeName(entry.opcode), entry.latency_ns, escaped_name.c_str(),
        entry.payload_bytes, entry.trace_id,
        now_ns >= entry.timestamp_ns ? now_ns - entry.timestamp_ns : 0);
    if (written > 0) out.append(buffer, static_cast<std::size_t>(written));
  }
  out += "]";
  return out;
}

}  // namespace sketch::server
