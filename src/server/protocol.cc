#include "server/protocol.h"

#include <cstring>

#include "common/check.h"

namespace sketch::server {

namespace {

uint16_t LoadU16(const uint8_t* p) {
  return static_cast<uint16_t>(static_cast<uint16_t>(p[0]) |
                               static_cast<uint16_t>(p[1]) << 8);
}

uint32_t LoadU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

uint64_t LoadU64(const uint8_t* p) {
  return static_cast<uint64_t>(LoadU32(p)) |
         static_cast<uint64_t>(LoadU32(p + 4)) << 32;
}

/// Frames a payload-free request (ping, listing, shutdown, ...).
std::vector<uint8_t> EncodeEmpty(Opcode opcode) {
  return EncodeFrame(opcode, {});
}

/// Shared tail for all Decode* functions: the message must consume the
/// payload exactly; trailing bytes mean a malformed or mismatched frame.
bool FinishDecode(const PayloadReader& reader) { return reader.AtEnd(); }

}  // namespace

// --- PayloadWriter --------------------------------------------------------

void PayloadWriter::PutU16(uint16_t value) {
  bytes_.push_back(static_cast<uint8_t>(value));
  bytes_.push_back(static_cast<uint8_t>(value >> 8));
}

void PayloadWriter::PutU32(uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    bytes_.push_back(static_cast<uint8_t>(value >> shift));
  }
}

void PayloadWriter::PutU64(uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    bytes_.push_back(static_cast<uint8_t>(value >> shift));
  }
}

void PayloadWriter::PutF64(double value) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  PutU64(bits);
}

void PayloadWriter::PutString(const std::string& value) {
  SKETCH_CHECK_MSG(value.size() <= kMaxNameBytes,
                   "encoded string exceeds kMaxNameBytes");
  PutU16(static_cast<uint16_t>(value.size()));
  bytes_.insert(bytes_.end(), value.begin(), value.end());
}

void PayloadWriter::PutBytes(const std::vector<uint8_t>& value) {
  SKETCH_CHECK_MSG(value.size() <= kMaxBlobBytes,
                   "encoded blob exceeds kMaxBlobBytes");
  PutU32(static_cast<uint32_t>(value.size()));
  bytes_.insert(bytes_.end(), value.begin(), value.end());
}

// --- PayloadReader --------------------------------------------------------

bool PayloadReader::TryReadU8(uint8_t* out) {
  if (remaining() < 1) return false;
  *out = data_[position_++];
  return true;
}

bool PayloadReader::TryReadU16(uint16_t* out) {
  if (remaining() < 2) return false;
  *out = LoadU16(data_ + position_);
  position_ += 2;
  return true;
}

bool PayloadReader::TryReadU32(uint32_t* out) {
  if (remaining() < 4) return false;
  *out = LoadU32(data_ + position_);
  position_ += 4;
  return true;
}

bool PayloadReader::TryReadU64(uint64_t* out) {
  if (remaining() < 8) return false;
  *out = LoadU64(data_ + position_);
  position_ += 8;
  return true;
}

bool PayloadReader::TryReadI64(int64_t* out) {
  uint64_t bits = 0;
  if (!TryReadU64(&bits)) return false;
  *out = static_cast<int64_t>(bits);
  return true;
}

bool PayloadReader::TryReadF64(double* out) {
  uint64_t bits = 0;
  if (!TryReadU64(&bits)) return false;
  std::memcpy(out, &bits, sizeof(bits));
  return true;
}

bool PayloadReader::TryReadString(std::string* out) {
  uint16_t length = 0;
  if (!TryReadU16(&length)) return false;
  // Validate against both the cap and the bytes actually present before
  // touching the output string, so a hostile length cannot allocate.
  if (length > kMaxNameBytes || length > remaining()) return false;
  out->assign(reinterpret_cast<const char*>(data_ + position_), length);
  position_ += length;
  return true;
}

bool PayloadReader::TryReadBytes(std::vector<uint8_t>* out,
                                 uint32_t max_bytes) {
  uint32_t length = 0;
  if (!TryReadU32(&length)) return false;
  if (length > max_bytes || length > remaining()) return false;
  out->assign(data_ + position_, data_ + position_ + length);
  position_ += length;
  return true;
}

// --- Framing --------------------------------------------------------------

std::vector<uint8_t> EncodeFrame(Opcode opcode,
                                 const std::vector<uint8_t>& payload) {
  SKETCH_CHECK_MSG(payload.size() <= kMaxFramePayloadBytes,
                   "frame payload exceeds kMaxFramePayloadBytes");
  std::vector<uint8_t> frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  const auto length = static_cast<uint32_t>(payload.size());
  for (int shift = 0; shift < 32; shift += 8) {
    frame.push_back(static_cast<uint8_t>(length >> shift));
  }
  frame.push_back(static_cast<uint8_t>(opcode));
  frame.push_back(kProtocolVersion);
  frame.push_back(0);  // flags (must-be-zero bits; see StampTraceId)
  frame.push_back(0);
  frame.insert(frame.end(), payload.begin(), payload.end());
  return frame;
}

void StampTraceId(std::vector<uint8_t>* frame, uint64_t trace_id) {
  SKETCH_CHECK_MSG(trace_id != 0, "trace id 0 is the untraced sentinel");
  SKETCH_CHECK_MSG(frame->size() >= kFrameHeaderBytes,
                   "StampTraceId on a truncated frame");
  const uint32_t payload_length = LoadU32(frame->data());
  SKETCH_CHECK_MSG(frame->size() == kFrameHeaderBytes + payload_length,
                   "StampTraceId on a malformed or multi-frame buffer");
  const uint16_t flags = LoadU16(frame->data() + 6);
  SKETCH_CHECK_MSG((flags & kFrameFlagTraceId) == 0,
                   "frame already carries a trace id");
  const uint32_t new_length =
      payload_length + static_cast<uint32_t>(kTraceIdBytes);
  SKETCH_CHECK_MSG(new_length <= kMaxFramePayloadBytes,
                   "trace id would push frame over kMaxFramePayloadBytes");
  for (int shift = 0; shift < 32; shift += 8) {
    (*frame)[static_cast<std::size_t>(shift / 8)] =
        static_cast<uint8_t>(new_length >> shift);
  }
  const uint16_t new_flags = flags | kFrameFlagTraceId;
  (*frame)[6] = static_cast<uint8_t>(new_flags);
  (*frame)[7] = static_cast<uint8_t>(new_flags >> 8);
  for (int shift = 0; shift < 64; shift += 8) {
    frame->push_back(static_cast<uint8_t>(trace_id >> shift));
  }
}

void FrameDecoder::Feed(const uint8_t* data, std::size_t size) {
  if (failed_) return;  // stream is already unrecoverable
  buffer_.insert(buffer_.end(), data, data + size);
}

DecodeStatus FrameDecoder::Next(Frame* out) {
  if (failed_) return DecodeStatus::kBadFrame;
  const std::size_t available = buffer_.size() - consumed_;
  if (available < kFrameHeaderBytes) {
    // Compact once the consumed prefix dominates, so a long-lived
    // connection does not grow its buffer without bound.
    if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
      buffer_.erase(buffer_.begin(),
                    buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
      consumed_ = 0;
    }
    return DecodeStatus::kNeedMore;
  }
  const uint8_t* header = buffer_.data() + consumed_;
  const uint32_t payload_length = LoadU32(header);
  const uint8_t raw_opcode = header[4];
  const uint8_t version = header[5];
  const uint16_t flags = LoadU16(header + 6);
  // Header validation happens before the payload is required to be
  // present: an oversized declared length is rejected here, while only
  // kFrameHeaderBytes have been buffered, so the declared length never
  // drives an allocation.
  if (version != kProtocolVersion) {
    failed_ = true;
    error_code_ = ErrorCode::kBadFrameHeader;
    error_ = "unsupported protocol version";
    return DecodeStatus::kBadFrame;
  }
  if ((flags & ~kKnownFrameFlags) != 0) {
    failed_ = true;
    error_code_ = ErrorCode::kBadFrameHeader;
    error_ = "reserved frame-header bits set";
    return DecodeStatus::kBadFrame;
  }
  const bool traced = (flags & kFrameFlagTraceId) != 0;
  if (traced && payload_length < kTraceIdBytes) {
    failed_ = true;
    error_code_ = ErrorCode::kBadFrameHeader;
    error_ = "trace-id flag set but payload shorter than the id";
    return DecodeStatus::kBadFrame;
  }
  if (payload_length > kMaxFramePayloadBytes) {
    failed_ = true;
    error_code_ = ErrorCode::kFrameTooLarge;
    error_ = "frame payload length exceeds kMaxFramePayloadBytes";
    return DecodeStatus::kBadFrame;
  }
  if (available < kFrameHeaderBytes + payload_length) {
    return DecodeStatus::kNeedMore;
  }
  out->opcode = static_cast<Opcode>(raw_opcode);
  const uint8_t* payload = header + kFrameHeaderBytes;
  // The trailing trace id is framing, not message: strip it here so the
  // typed decoders (which reject trailing bytes) never see it.
  const std::size_t message_length =
      traced ? payload_length - kTraceIdBytes : payload_length;
  out->payload.assign(payload, payload + message_length);
  out->trace_id = traced ? LoadU64(payload + message_length) : 0;
  consumed_ += kFrameHeaderBytes + payload_length;
  if (consumed_ == buffer_.size()) {
    buffer_.clear();
    consumed_ = 0;
  }
  return DecodeStatus::kFrame;
}

// --- Typed encode/decode --------------------------------------------------

std::vector<uint8_t> EncodePing() { return EncodeEmpty(Opcode::kPing); }
std::vector<uint8_t> EncodeShutdown() { return EncodeEmpty(Opcode::kShutdown); }
std::vector<uint8_t> EncodeListSketches() {
  return EncodeEmpty(Opcode::kListSketches);
}
std::vector<uint8_t> EncodeStatsz() { return EncodeEmpty(Opcode::kStatsz); }
std::vector<uint8_t> EncodeTraceDump() {
  return EncodeEmpty(Opcode::kTraceDump);
}

std::vector<uint8_t> EncodeCreateSketch(const CreateSketchRequest& request) {
  PayloadWriter writer;
  writer.PutString(request.name);
  writer.PutU8(static_cast<uint8_t>(request.type));
  for (uint64_t param : request.params) writer.PutU64(param);
  return EncodeFrame(Opcode::kCreateSketch, writer.bytes());
}

bool DecodeCreateSketch(const Frame& frame, CreateSketchRequest* out) {
  if (frame.opcode != Opcode::kCreateSketch) return false;
  PayloadReader reader(frame.payload);
  uint8_t raw_type = 0;
  if (!reader.TryReadString(&out->name) || !reader.TryReadU8(&raw_type)) {
    return false;
  }
  out->type = static_cast<SketchType>(raw_type);
  for (uint64_t& param : out->params) {
    if (!reader.TryReadU64(&param)) return false;
  }
  return FinishDecode(reader);
}

std::vector<uint8_t> EncodeIngestSpan(const std::string& name,
                                      UpdateSpan updates) {
  SKETCH_CHECK_MSG(updates.size() <= kMaxBatchUpdates,
                   "ingest batch exceeds kMaxBatchUpdates");
  PayloadWriter writer;
  writer.PutString(name);
  writer.PutU32(static_cast<uint32_t>(updates.size()));
  for (const StreamUpdate& update : updates) {
    writer.PutU64(update.item);
    writer.PutI64(update.delta);
  }
  return EncodeFrame(Opcode::kIngest, writer.bytes());
}

std::vector<uint8_t> EncodeIngest(const IngestRequest& request) {
  return EncodeIngestSpan(request.name, UpdateSpan(request.updates));
}

bool DecodeIngest(const Frame& frame, IngestRequest* out) {
  if (frame.opcode != Opcode::kIngest) return false;
  out->trace_id = frame.trace_id;  // framing metadata, not payload
  PayloadReader reader(frame.payload);
  uint32_t count = 0;
  if (!reader.TryReadString(&out->name) || !reader.TryReadU32(&count)) {
    return false;
  }
  // Reject before allocating: the declared count must respect the batch
  // cap AND fit in the bytes actually present (16 bytes per update).
  if (count > kMaxBatchUpdates || reader.remaining() / 16 < count) {
    return false;
  }
  out->updates.resize(count);
  for (StreamUpdate& update : out->updates) {
    if (!reader.TryReadU64(&update.item) || !reader.TryReadI64(&update.delta)) {
      return false;
    }
  }
  return FinishDecode(reader);
}

std::vector<uint8_t> EncodePointQuery(const PointQueryRequest& request) {
  PayloadWriter writer;
  writer.PutString(request.name);
  writer.PutU64(request.item);
  return EncodeFrame(Opcode::kPointQuery, writer.bytes());
}

bool DecodePointQuery(const Frame& frame, PointQueryRequest* out) {
  if (frame.opcode != Opcode::kPointQuery) return false;
  PayloadReader reader(frame.payload);
  return reader.TryReadString(&out->name) && reader.TryReadU64(&out->item) &&
         FinishDecode(reader);
}

std::vector<uint8_t> EncodePointQueryBatch(
    const PointQueryBatchRequest& request) {
  SKETCH_CHECK_MSG(request.items.size() <= kMaxBatchQueryItems,
                   "point-query batch exceeds kMaxBatchQueryItems");
  PayloadWriter writer;
  writer.PutString(request.name);
  writer.PutU32(static_cast<uint32_t>(request.items.size()));
  for (uint64_t item : request.items) writer.PutU64(item);
  return EncodeFrame(Opcode::kPointQueryBatch, writer.bytes());
}

bool DecodePointQueryBatch(const Frame& frame, PointQueryBatchRequest* out) {
  if (frame.opcode != Opcode::kPointQueryBatch) return false;
  PayloadReader reader(frame.payload);
  if (!reader.TryReadString(&out->name)) return false;
  uint32_t count = 0;
  if (!reader.TryReadU32(&count)) return false;
  if (count > kMaxBatchQueryItems || reader.remaining() / 8 < count) {
    return false;
  }
  out->items.resize(count);
  for (uint64_t& item : out->items) {
    if (!reader.TryReadU64(&item)) return false;
  }
  return FinishDecode(reader);
}

std::vector<uint8_t> EncodeHeavyHitters(const HeavyHittersRequest& request) {
  PayloadWriter writer;
  writer.PutString(request.name);
  writer.PutF64(request.phi);
  return EncodeFrame(Opcode::kHeavyHitters, writer.bytes());
}

bool DecodeHeavyHitters(const Frame& frame, HeavyHittersRequest* out) {
  if (frame.opcode != Opcode::kHeavyHitters) return false;
  PayloadReader reader(frame.payload);
  return reader.TryReadString(&out->name) && reader.TryReadF64(&out->phi) &&
         FinishDecode(reader);
}

std::vector<uint8_t> EncodeInnerProduct(const InnerProductRequest& request) {
  PayloadWriter writer;
  writer.PutString(request.left);
  writer.PutString(request.right);
  return EncodeFrame(Opcode::kInnerProduct, writer.bytes());
}

bool DecodeInnerProduct(const Frame& frame, InnerProductRequest* out) {
  if (frame.opcode != Opcode::kInnerProduct) return false;
  PayloadReader reader(frame.payload);
  return reader.TryReadString(&out->left) &&
         reader.TryReadString(&out->right) && FinishDecode(reader);
}

namespace {
std::vector<uint8_t> EncodeNamed(Opcode opcode, const NamedRequest& request) {
  PayloadWriter writer;
  writer.PutString(request.name);
  return EncodeFrame(opcode, writer.bytes());
}
}  // namespace

std::vector<uint8_t> EncodeDropSketch(const NamedRequest& request) {
  return EncodeNamed(Opcode::kDropSketch, request);
}

std::vector<uint8_t> EncodeSnapshot(const NamedRequest& request) {
  return EncodeNamed(Opcode::kSnapshot, request);
}

bool DecodeNamedRequest(const Frame& frame, NamedRequest* out) {
  if (frame.opcode != Opcode::kDropSketch &&
      frame.opcode != Opcode::kSnapshot) {
    return false;
  }
  PayloadReader reader(frame.payload);
  return reader.TryReadString(&out->name) && FinishDecode(reader);
}

std::vector<uint8_t> EncodeRestore(const RestoreRequest& request) {
  PayloadWriter writer;
  writer.PutString(request.name);
  writer.PutU8(static_cast<uint8_t>(request.type));
  writer.PutBytes(request.blob);
  return EncodeFrame(Opcode::kRestore, writer.bytes());
}

bool DecodeRestore(const Frame& frame, RestoreRequest* out) {
  if (frame.opcode != Opcode::kRestore) return false;
  PayloadReader reader(frame.payload);
  uint8_t raw_type = 0;
  if (!reader.TryReadString(&out->name) || !reader.TryReadU8(&raw_type)) {
    return false;
  }
  out->type = static_cast<SketchType>(raw_type);
  return reader.TryReadBytes(&out->blob, kMaxBlobBytes) && FinishDecode(reader);
}

std::vector<uint8_t> EncodeOk() { return EncodeEmpty(Opcode::kOk); }
std::vector<uint8_t> EncodePong() { return EncodeEmpty(Opcode::kPong); }

std::vector<uint8_t> EncodeError(const ErrorResponse& response) {
  PayloadWriter writer;
  writer.PutU16(static_cast<uint16_t>(response.code));
  // Error text is bounded like a name so a response always fits one frame.
  std::string message = response.message;
  if (message.size() > kMaxNameBytes) message.resize(kMaxNameBytes);
  writer.PutString(message);
  return EncodeFrame(Opcode::kError, writer.bytes());
}

bool DecodeError(const Frame& frame, ErrorResponse* out) {
  if (frame.opcode != Opcode::kError) return false;
  PayloadReader reader(frame.payload);
  uint16_t raw_code = 0;
  if (!reader.TryReadU16(&raw_code)) return false;
  out->code = static_cast<ErrorCode>(raw_code);
  return reader.TryReadString(&out->message) && FinishDecode(reader);
}

std::vector<uint8_t> EncodePointValue(const PointValueResponse& response) {
  PayloadWriter writer;
  writer.PutI64(response.estimate);
  writer.PutF64(response.error_bound);
  writer.PutU8(static_cast<uint8_t>(response.bound_kind));
  return EncodeFrame(Opcode::kPointValue, writer.bytes());
}

bool DecodePointValue(const Frame& frame, PointValueResponse* out) {
  if (frame.opcode != Opcode::kPointValue) return false;
  PayloadReader reader(frame.payload);
  uint8_t raw_kind = 0;
  if (!reader.TryReadI64(&out->estimate) ||
      !reader.TryReadF64(&out->error_bound) || !reader.TryReadU8(&raw_kind)) {
    return false;
  }
  out->bound_kind = static_cast<BoundKind>(raw_kind);
  return FinishDecode(reader);
}

std::vector<uint8_t> EncodeValueBatch(const ValueBatchResponse& response) {
  SKETCH_CHECK_MSG(response.values.size() <= kMaxBatchQueryItems,
                   "value batch exceeds kMaxBatchQueryItems");
  PayloadWriter writer;
  writer.PutU32(static_cast<uint32_t>(response.values.size()));
  for (const PointValueResponse& value : response.values) {
    writer.PutI64(value.estimate);
    writer.PutF64(value.error_bound);
    writer.PutU8(static_cast<uint8_t>(value.bound_kind));
  }
  return EncodeFrame(Opcode::kValueBatch, writer.bytes());
}

bool DecodeValueBatch(const Frame& frame, ValueBatchResponse* out) {
  if (frame.opcode != Opcode::kValueBatch) return false;
  PayloadReader reader(frame.payload);
  uint32_t count = 0;
  if (!reader.TryReadU32(&count)) return false;
  // 17 bytes per entry: i64 estimate + f64 bound + u8 kind.
  if (count > kMaxBatchQueryItems || reader.remaining() / 17 < count) {
    return false;
  }
  out->values.resize(count);
  for (PointValueResponse& value : out->values) {
    uint8_t raw_kind = 0;
    if (!reader.TryReadI64(&value.estimate) ||
        !reader.TryReadF64(&value.error_bound) ||
        !reader.TryReadU8(&raw_kind)) {
      return false;
    }
    value.bound_kind = static_cast<BoundKind>(raw_kind);
  }
  return FinishDecode(reader);
}

std::vector<uint8_t> EncodeItems(const ItemsResponse& response) {
  SKETCH_CHECK_MSG(response.items.size() <= kMaxHeavyHitterItems,
                   "items response exceeds kMaxHeavyHitterItems");
  PayloadWriter writer;
  writer.PutU32(static_cast<uint32_t>(response.items.size()));
  for (uint64_t item : response.items) writer.PutU64(item);
  return EncodeFrame(Opcode::kItems, writer.bytes());
}

bool DecodeItems(const Frame& frame, ItemsResponse* out) {
  if (frame.opcode != Opcode::kItems) return false;
  PayloadReader reader(frame.payload);
  uint32_t count = 0;
  if (!reader.TryReadU32(&count)) return false;
  if (count > kMaxHeavyHitterItems || reader.remaining() / 8 < count) {
    return false;
  }
  out->items.resize(count);
  for (uint64_t& item : out->items) {
    if (!reader.TryReadU64(&item)) return false;
  }
  return FinishDecode(reader);
}

std::vector<uint8_t> EncodeBlob(const BlobResponse& response) {
  PayloadWriter writer;
  writer.PutBytes(response.bytes);
  return EncodeFrame(Opcode::kBlob, writer.bytes());
}

bool DecodeBlob(const Frame& frame, BlobResponse* out) {
  if (frame.opcode != Opcode::kBlob) return false;
  PayloadReader reader(frame.payload);
  return reader.TryReadBytes(&out->bytes, kMaxBlobBytes) &&
         FinishDecode(reader);
}

std::vector<uint8_t> EncodeText(const TextResponse& response) {
  // Text payloads (statsz JSON, trace JSON, listings) can exceed the name
  // cap, so they ride as a length-prefixed blob.
  PayloadWriter writer;
  std::vector<uint8_t> bytes(response.text.begin(), response.text.end());
  writer.PutBytes(bytes);
  return EncodeFrame(Opcode::kText, writer.bytes());
}

bool DecodeText(const Frame& frame, TextResponse* out) {
  if (frame.opcode != Opcode::kText) return false;
  PayloadReader reader(frame.payload);
  std::vector<uint8_t> bytes;
  if (!reader.TryReadBytes(&bytes, kMaxBlobBytes)) return false;
  out->text.assign(bytes.begin(), bytes.end());
  return FinishDecode(reader);
}

std::vector<uint8_t> EncodeIngestAck(const IngestAckResponse& response) {
  PayloadWriter writer;
  writer.PutU64(response.accepted);
  return EncodeFrame(Opcode::kIngestAck, writer.bytes());
}

bool DecodeIngestAck(const Frame& frame, IngestAckResponse* out) {
  if (frame.opcode != Opcode::kIngestAck) return false;
  PayloadReader reader(frame.payload);
  return reader.TryReadU64(&out->accepted) && FinishDecode(reader);
}

bool IsKnownRequestOpcode(uint8_t raw) {
  return raw >= static_cast<uint8_t>(Opcode::kPing) &&
         raw <= static_cast<uint8_t>(Opcode::kPointQueryBatch);
}

const char* OpcodeName(Opcode opcode) {
  switch (opcode) {
    case Opcode::kPing: return "Ping";
    case Opcode::kCreateSketch: return "CreateSketch";
    case Opcode::kDropSketch: return "DropSketch";
    case Opcode::kIngest: return "Ingest";
    case Opcode::kPointQuery: return "PointQuery";
    case Opcode::kHeavyHitters: return "HeavyHitters";
    case Opcode::kInnerProduct: return "InnerProduct";
    case Opcode::kSnapshot: return "Snapshot";
    case Opcode::kRestore: return "Restore";
    case Opcode::kListSketches: return "ListSketches";
    case Opcode::kStatsz: return "Statsz";
    case Opcode::kTraceDump: return "TraceDump";
    case Opcode::kShutdown: return "Shutdown";
    case Opcode::kPointQueryBatch: return "PointQueryBatch";
    case Opcode::kOk: return "Ok";
    case Opcode::kError: return "Error";
    case Opcode::kPointValue: return "PointValue";
    case Opcode::kItems: return "Items";
    case Opcode::kBlob: return "Blob";
    case Opcode::kText: return "Text";
    case Opcode::kPong: return "Pong";
    case Opcode::kIngestAck: return "IngestAck";
    case Opcode::kValueBatch: return "ValueBatch";
  }
  return "Unknown";
}

const char* SketchTypeName(SketchType type) {
  switch (type) {
    case SketchType::kCountMin: return "CountMin";
    case SketchType::kCountSketch: return "CountSketch";
    case SketchType::kBloom: return "Bloom";
    case SketchType::kStreamSummary: return "StreamSummary";
    case SketchType::kShardedCountMin: return "ShardedCountMin";
  }
  return "Unknown";
}

}  // namespace sketch::server
