#ifndef SKETCH_SERVER_CLIENT_H_
#define SKETCH_SERVER_CLIENT_H_

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "server/protocol.h"
#include "server/transport.h"
#include "stream/update.h"

namespace sketch::server {

/// Synchronous client for the sketch daemon: one request in flight at a
/// time over any ByteStream (socket or loopback). Every call returns
/// false on transport failure, protocol violation, or a server error
/// response; last_error() explains the most recent failure.
class SketchClient {
 public:
  explicit SketchClient(std::unique_ptr<ByteStream> stream)
      : stream_(std::move(stream)) {}

  bool Ping();
  bool CreateSketch(const std::string& name, SketchType type,
                    const std::array<uint64_t, 5>& params);
  bool DropSketch(const std::string& name);
  bool Ingest(const std::string& name, UpdateSpan updates,
              uint64_t* accepted = nullptr);
  bool PointQuery(const std::string& name, uint64_t item,
                  PointValueResponse* out);
  /// Batched point query: one round trip for up to kMaxBatchQueryItems
  /// keys; *out holds one value per key in request order.
  bool PointQueryBatch(const std::string& name,
                       const std::vector<uint64_t>& items,
                       std::vector<PointValueResponse>* out);
  bool HeavyHitters(const std::string& name, double phi,
                    std::vector<uint64_t>* out);
  bool InnerProduct(const std::string& left, const std::string& right,
                    int64_t* out);
  bool Snapshot(const std::string& name, std::vector<uint8_t>* blob);
  bool Restore(const std::string& name, SketchType type,
               const std::vector<uint8_t>& blob);
  bool ListSketches(std::string* json);
  bool Statsz(std::string* json);
  bool TraceDump(std::string* json);
  bool Shutdown();

  /// The server's error response from the last failed call, if any (code
  /// is kNone when the failure was transport-level).
  const ErrorResponse& last_error() const { return last_error_; }

  void Close() { stream_->Close(); }

 private:
  /// Writes a request frame and blocks for the response frame. False on
  /// transport or framing failure.
  bool Transact(const std::vector<uint8_t>& request, Frame* response);

  /// Transact + map a kError response into last_error_.
  bool TransactChecked(const std::vector<uint8_t>& request, Frame* response);

  /// For requests whose success response is a bare kOk.
  bool TransactExpectOk(const std::vector<uint8_t>& request);

  std::unique_ptr<ByteStream> stream_;
  FrameDecoder decoder_;
  ErrorResponse last_error_;
};

}  // namespace sketch::server

#endif  // SKETCH_SERVER_CLIENT_H_
