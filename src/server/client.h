#ifndef SKETCH_SERVER_CLIENT_H_
#define SKETCH_SERVER_CLIENT_H_

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/prng.h"
#include "server/protocol.h"
#include "server/transport.h"
#include "stream/update.h"

namespace sketch::server {

/// Synchronous client for the sketch daemon: one request in flight at a
/// time over any ByteStream (socket or loopback). Every call returns
/// false on transport failure, protocol violation, or a server error
/// response; last_error() explains the most recent failure.
class SketchClient {
 public:
  explicit SketchClient(std::unique_ptr<ByteStream> stream)
      : stream_(std::move(stream)) {}

  bool Ping();
  bool CreateSketch(const std::string& name, SketchType type,
                    const std::array<uint64_t, 5>& params);
  bool DropSketch(const std::string& name);
  bool Ingest(const std::string& name, UpdateSpan updates,
              uint64_t* accepted = nullptr);
  bool PointQuery(const std::string& name, uint64_t item,
                  PointValueResponse* out);
  /// Batched point query: one round trip for up to kMaxBatchQueryItems
  /// keys; *out holds one value per key in request order.
  bool PointQueryBatch(const std::string& name,
                       const std::vector<uint64_t>& items,
                       std::vector<PointValueResponse>* out);
  bool HeavyHitters(const std::string& name, double phi,
                    std::vector<uint64_t>* out);
  bool InnerProduct(const std::string& left, const std::string& right,
                    int64_t* out);
  bool Snapshot(const std::string& name, std::vector<uint8_t>* blob);
  bool Restore(const std::string& name, SketchType type,
               const std::vector<uint8_t>& blob);
  bool ListSketches(std::string* json);
  bool Statsz(std::string* json);
  bool TraceDump(std::string* json);
  bool Shutdown();

  /// The server's error response from the last failed call, if any (code
  /// is kNone when the failure was transport-level).
  const ErrorResponse& last_error() const { return last_error_; }

  /// Stamps every `every`-th request frame with a wire trace id (see
  /// StampTraceId): 1 traces everything, 0 (the default) nothing. Ids are
  /// drawn deterministically from `seed`, so a scripted run produces the
  /// same ids every time and a test can look its span up by value.
  void SetTraceSampling(uint64_t every, uint64_t seed = 1) {
    trace_every_ = every;
    trace_rng_ = SplitMix64(seed);
    transact_count_ = 0;
  }

  /// Trace id stamped on the most recent request (0 if it was unsampled).
  uint64_t last_trace_id() const { return last_trace_id_; }

  void Close() { stream_->Close(); }

 private:
  /// Writes a request frame and blocks for the response frame. False on
  /// transport or framing failure.
  bool Transact(const std::vector<uint8_t>& request, Frame* response);

  /// Transact + map a kError response into last_error_.
  bool TransactChecked(const std::vector<uint8_t>& request, Frame* response);

  /// For requests whose success response is a bare kOk.
  bool TransactExpectOk(const std::vector<uint8_t>& request);

  std::unique_ptr<ByteStream> stream_;
  FrameDecoder decoder_;
  ErrorResponse last_error_;
  uint64_t trace_every_ = 0;
  SplitMix64 trace_rng_{0};
  uint64_t transact_count_ = 0;
  uint64_t last_trace_id_ = 0;
};

}  // namespace sketch::server

#endif  // SKETCH_SERVER_CLIENT_H_
