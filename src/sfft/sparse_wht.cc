#include "sfft/sparse_wht.h"

#include <algorithm>

#include "common/check.h"
#include "common/prng.h"
#include "fft/fft.h"

namespace sketch {

namespace {

/// chi_s(x) = (-1)^{popcount(s & x)}.
inline double Chi(uint64_t s, uint64_t x) {
  return (__builtin_popcountll(s & x) & 1) ? -1.0 : 1.0;
}

}  // namespace

SparseWhtResult KushilevitzMansour(const std::vector<double>& f,
                                   const SparseWhtOptions& options) {
  const uint64_t n = f.size();
  SKETCH_CHECK(IsPowerOfTwo(n) && n >= 2);
  SKETCH_CHECK(options.threshold > 0.0);
  int log_n = 0;
  while ((1ULL << log_n) < n) ++log_n;

  Xoshiro256StarStar rng(options.seed);
  SparseWhtResult result;
  // Survive at a quarter of the target weight: the Monte-Carlo weight
  // estimate has std ~ E[f^2]/sqrt(samples), and a heavy character lost at
  // any level is lost forever — err on keeping borderline buckets (the
  // final per-coefficient filter prunes impostors).
  const double weight_threshold =
      0.25 * options.threshold * options.threshold;

  // Buckets: characters agreeing with `prefix` on their low `level` bits.
  std::vector<uint64_t> frontier = {0};
  for (int level = 1; level <= log_n; ++level) {
    std::vector<uint64_t> next;
    const uint64_t low_mask = (1ULL << level) - 1;
    for (uint64_t parent : frontier) {
      for (uint64_t bit = 0; bit <= 1; ++bit) {
        const uint64_t prefix = parent | (bit << (level - 1));
        // W = E[f(z:x1) f(z:x2) chi_prefix(x1 ^ x2)], x1, x2 over the low
        // `level` bits, z over the high bits.
        double acc = 0.0;
        for (int t = 0; t < options.samples_per_estimate; ++t) {
          const uint64_t x1 = rng.Next() & low_mask;
          const uint64_t x2 = rng.Next() & low_mask;
          const uint64_t z = (rng.Next() << level) & (n - 1);
          acc += f[z | x1] * f[z | x2] * Chi(prefix, x1 ^ x2);
        }
        result.samples_read += 2 * options.samples_per_estimate;
        const double weight = acc / options.samples_per_estimate;
        if (weight >= weight_threshold) next.push_back(prefix);
      }
    }
    SKETCH_CHECK_MSG(next.size() <= options.max_buckets_per_level,
                     "bucket tree exploded; threshold too low for signal");
    frontier = std::move(next);
    if (frontier.empty()) break;
  }

  // Estimate the surviving coefficients.
  for (uint64_t s : frontier) {
    double value = 0.0;
    if (options.samples_per_coefficient == 0) {
      for (uint64_t x = 0; x < n; ++x) value += f[x] * Chi(s, x);
      value /= static_cast<double>(n);
      result.samples_read += n;
    } else {
      for (int t = 0; t < options.samples_per_coefficient; ++t) {
        const uint64_t x = rng.Next() & (n - 1);
        value += f[x] * Chi(s, x);
      }
      value /= options.samples_per_coefficient;
      result.samples_read += options.samples_per_coefficient;
    }
    if (std::abs(value) >= 0.5 * options.threshold) {
      result.coefficients.push_back({s, value});
    }
  }
  std::sort(result.coefficients.begin(), result.coefficients.end(),
            [](const WhtCoefficient& a, const WhtCoefficient& b) {
              return a.index < b.index;
            });
  return result;
}

std::vector<double> DenseWht(const std::vector<double>& f) {
  const uint64_t n = f.size();
  SKETCH_CHECK(IsPowerOfTwo(n));
  std::vector<double> a = f;
  for (uint64_t len = 1; len < n; len <<= 1) {
    for (uint64_t i = 0; i < n; i += 2 * len) {
      for (uint64_t j = i; j < i + len; ++j) {
        const double u = a[j];
        const double v = a[j + len];
        a[j] = u + v;
        a[j + len] = u - v;
      }
    }
  }
  const double inv_n = 1.0 / static_cast<double>(n);
  for (double& v : a) v *= inv_n;
  return a;
}

std::vector<double> SynthesizeFromWhtCoefficients(
    uint64_t n, const std::vector<WhtCoefficient>& coeffs) {
  SKETCH_CHECK(IsPowerOfTwo(n));
  std::vector<double> f(n, 0.0);
  for (const WhtCoefficient& c : coeffs) {
    SKETCH_CHECK(c.index < n);
    for (uint64_t x = 0; x < n; ++x) f[x] += c.value * Chi(c.index, x);
  }
  return f;
}

}  // namespace sketch
