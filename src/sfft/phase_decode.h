#ifndef SKETCH_SFFT_PHASE_DECODE_H_
#define SKETCH_SFFT_PHASE_DECODE_H_

#include <cmath>
#include <cstdint>
#include <numbers>
#include <vector>

#include "common/prng.h"
#include "fft/fft.h"

/// \file
/// Shared phase-measurement machinery for the sparse transforms: shift
/// schedules and the bitwise singleton decoder. A singleton coefficient at
/// (unknown) frequency g observed through measurements proportional to
/// e^{2*pi*i*g*tau/n} at chosen shifts tau can be located bit by bit —
/// shift tau = n/2^j reveals g mod 2^j with a phase margin of pi/2 per
/// bit, making location robust at any n (a single unit shift would need
/// phase accuracy 2*pi/n, i.e., bucket SNR > n).

namespace sketch {

/// e^{2*pi*i*(numerator mod n)/n}.
inline Complex PhaseUnit(uint64_t numerator, uint64_t n) {
  const double angle = 2.0 * std::numbers::pi *
                       static_cast<double>(numerator % n) /
                       static_cast<double>(n);
  return Complex(std::cos(angle), std::sin(angle));
}

/// Shift schedule: {0} (estimation reference), {n >> j} for j in
/// [start_level, log2 n] (bitwise location), one random shift (ghost
/// validation). start_level > 1 skips bits already known to the caller.
inline std::vector<uint64_t> PhaseShiftSchedule(uint64_t n, int start_level,
                                                Xoshiro256StarStar* rng) {
  std::vector<uint64_t> shifts;
  shifts.push_back(0);
  for (int j = start_level; (n >> j) >= 1; ++j) shifts.push_back(n >> j);
  shifts.push_back(2 + rng->NextBounded(n - 2));
  return shifts;
}

/// Decodes the frequency g of a presumed singleton from its measurement
/// values across `shifts` (built by PhaseShiftSchedule with the same
/// start_level). `g_known` supplies the low (start_level - 1) bits.
/// Validates per-scale magnitude consistency and the final random-shift
/// phase; returns false on any failure (collision / noise-dominated).
inline bool PhaseDecodeSingleton(const std::vector<Complex>& values,
                                 const std::vector<uint64_t>& shifts,
                                 uint64_t n, int start_level,
                                 uint64_t g_known, double tolerance,
                                 uint64_t* g_out) {
  const Complex a0 = values[0];
  int levels = 0;
  while ((1ULL << levels) < n) ++levels;
  uint64_t g = g_known;  // g mod 2^(j-1) entering step j
  for (int j = start_level; j <= levels; ++j) {
    const Complex ratio = values[j - start_level + 1] / a0;
    if (std::abs(std::abs(ratio) - 1.0) > tolerance) return false;
    const double base = 2.0 * std::numbers::pi * static_cast<double>(g) /
                        static_cast<double>(1ULL << j);
    const Complex p0(std::cos(base), std::sin(base));
    // Setting the new bit flips the expected phase by pi: pick the closer.
    if ((ratio * std::conj(p0)).real() < 0.0) g += 1ULL << (j - 1);
  }
  const Complex predicted = a0 * PhaseUnit(g * shifts.back(), n);
  if (std::abs(values.back() - predicted) > tolerance * std::abs(a0)) {
    return false;
  }
  *g_out = g;
  return true;
}

}  // namespace sketch

#endif  // SKETCH_SFFT_PHASE_DECODE_H_
