#ifndef SKETCH_SFFT_FLAT_FILTER_H_
#define SKETCH_SFFT_FLAT_FILTER_H_

#include <cstdint>
#include <vector>

namespace sketch {

/// The "flat window" filter of [HIKP12b]: a time-domain window with small
/// support whose spectrum is nearly flat across one bucket of width n/B
/// and decays to a negligible level (`leakage_delta`) outside — the
/// carefully-designed band-pass filter §4 of the survey credits with
/// making frequency-domain bucket leakage negligible.
///
/// Construction: a truncated Gaussian (time std chosen so the truncation
/// error is delta) multiplied by a Dirichlet kernel (the time-domain dual
/// of a frequency boxcar of half-width n/(2B)). The spectrum is the
/// boxcar convolved with a narrow Gaussian: flat over the passband, delta
/// beyond a transition band of width ~ (n/support)·log(1/delta).
///
/// The full frequency response is precomputed (one length-n FFT at
/// construction) so estimation can divide out the exact filter gain at any
/// offset; construction is a one-time cost reused across transforms of the
/// same geometry.
class FlatFilter {
 public:
  /// \param n              signal length (power of two).
  /// \param buckets        number of buckets B (power of two, <= n).
  /// \param support_factor filter support = support_factor * n / buckets
  ///                       (clamped to n; larger = flatter, more samples).
  /// \param leakage_delta  target out-of-band leakage (e.g., 1e-8).
  FlatFilter(uint64_t n, uint64_t buckets, int support_factor,
             double leakage_delta);

  /// Filter taps; tap `i` multiplies time offset t = i - half_support().
  const std::vector<double>& taps() const { return taps_; }

  /// Filter support w (odd); taps cover t in [-w/2, w/2].
  uint64_t support() const { return taps_.size(); }
  int64_t half_support() const {
    return static_cast<int64_t>(taps_.size() / 2);
  }

  /// Frequency response H[f], f in [0, n) (real: the window is symmetric),
  /// normalized so the passband center has gain 1.
  const std::vector<double>& frequency_response() const { return response_; }

  /// Response at a signed frequency offset (wraps mod n).
  double ResponseAt(int64_t offset) const {
    const uint64_t f =
        static_cast<uint64_t>((offset % static_cast<int64_t>(n_) +
                               static_cast<int64_t>(n_))) %
        n_;
    return response_[f];
  }

  /// Worst passband gain deviation from 1 over |offset| <= n/(2B)
  /// (diagnostic used by tests and the E10 leakage table).
  double PassbandRipple() const;

  /// Largest |H| over offsets beyond the transition band (leakage floor).
  double StopbandLeakage() const;

  uint64_t n() const { return n_; }
  uint64_t buckets() const { return buckets_; }

 private:
  uint64_t n_;
  uint64_t buckets_;
  std::vector<double> taps_;
  std::vector<double> response_;
};

}  // namespace sketch

#endif  // SKETCH_SFFT_FLAT_FILTER_H_
