#include "sfft/spectrum_utils.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <unordered_map>

#include "common/check.h"
#include "common/prng.h"

namespace sketch {

SparseSpectrumSignal MakeSparseSpectrumSignal(uint64_t n, uint64_t k,
                                              uint64_t seed) {
  SKETCH_CHECK(k <= n);
  Xoshiro256StarStar rng(seed);
  SparseSpectrumSignal signal;
  // Distinct random frequencies via rejection (k << n in all experiments).
  std::vector<uint64_t> freqs;
  while (freqs.size() < k) {
    const uint64_t f = rng.NextBounded(n);
    if (std::find(freqs.begin(), freqs.end(), f) == freqs.end()) {
      freqs.push_back(f);
    }
  }
  std::sort(freqs.begin(), freqs.end());
  signal.coefficients.reserve(k);
  for (uint64_t f : freqs) {
    const double phase = 2.0 * std::numbers::pi * rng.NextDouble();
    signal.coefficients.push_back(
        {f, Complex(std::cos(phase), std::sin(phase))});
  }
  // Synthesize x[t] = (1/n) sum_f xhat[f] e^{2 pi i f t / n} directly.
  signal.time_domain.assign(n, Complex(0, 0));
  const double tau = 2.0 * std::numbers::pi / static_cast<double>(n);
  for (const SpectralCoefficient& c : signal.coefficients) {
    for (uint64_t t = 0; t < n; ++t) {
      const double angle =
          tau * static_cast<double>((c.frequency * t) % n);
      signal.time_domain[t] +=
          c.value * Complex(std::cos(angle), std::sin(angle));
    }
  }
  const double inv_n = 1.0 / static_cast<double>(n);
  for (Complex& v : signal.time_domain) v *= inv_n;
  return signal;
}

void AddComplexNoise(std::vector<Complex>* x, double sigma, uint64_t seed) {
  SKETCH_CHECK(sigma >= 0.0);
  if (sigma == 0.0) return;
  Xoshiro256StarStar rng(seed);
  for (Complex& v : *x) {
    v += Complex(sigma * rng.NextGaussian(), sigma * rng.NextGaussian());
  }
}

double SpectrumL2Error(const std::vector<SpectralCoefficient>& recovered,
                       const SparseSpectrumSignal& signal) {
  std::unordered_map<uint64_t, Complex> truth;
  for (const SpectralCoefficient& c : signal.coefficients) {
    truth[c.frequency] = c.value;
  }
  double err2 = 0.0;
  std::unordered_map<uint64_t, bool> seen;
  for (const SpectralCoefficient& c : recovered) {
    const auto it = truth.find(c.frequency);
    const Complex t = it == truth.end() ? Complex(0, 0) : it->second;
    err2 += std::norm(c.value - t);
    seen[c.frequency] = true;
  }
  for (const SpectralCoefficient& c : signal.coefficients) {
    if (!seen.count(c.frequency)) err2 += std::norm(c.value);
  }
  return std::sqrt(err2);
}

std::vector<SpectralCoefficient> TopKCoefficients(
    const std::vector<Complex>& spectrum, uint64_t k) {
  std::vector<uint64_t> order(spectrum.size());
  for (uint64_t i = 0; i < spectrum.size(); ++i) order[i] = i;
  if (k < order.size()) {
    std::nth_element(order.begin(), order.begin() + k, order.end(),
                     [&](uint64_t a, uint64_t b) {
                       return std::norm(spectrum[a]) > std::norm(spectrum[b]);
                     });
    order.resize(k);
  }
  std::sort(order.begin(), order.end());
  std::vector<SpectralCoefficient> result;
  result.reserve(order.size());
  for (uint64_t f : order) result.push_back({f, spectrum[f]});
  return result;
}

}  // namespace sketch
