#include "sfft/sfft.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <unordered_map>

#include "common/check.h"
#include "common/prng.h"
#include "sfft/modular.h"
#include "sfft/phase_decode.h"
#include "telemetry/telemetry.h"

namespace sketch {

namespace {

uint64_t AutoBuckets(uint64_t n, uint64_t k) {
  uint64_t b = 1;
  while (b < 4 * k) b <<= 1;
  while (b > n) b >>= 1;
  return std::max<uint64_t>(b, 2);
}

int Log2(uint64_t n) {
  int l = 0;
  while ((1ULL << l) < n) ++l;
  return l;
}

std::vector<SpectralCoefficient> SortedCoefficients(
    const std::unordered_map<uint64_t, Complex>& found) {
  std::vector<SpectralCoefficient> coeffs;
  coeffs.reserve(found.size());
  for (const auto& [f, v] : found) coeffs.push_back({f, v});
  std::sort(coeffs.begin(), coeffs.end(),
            [](const SpectralCoefficient& a, const SpectralCoefficient& b) {
              return a.frequency < b.frequency;
            });
  return coeffs;
}

/// Noise-floor-aware threshold: buckets count as occupied when they rise
/// above both the relative tolerance and a few times the median magnitude
/// (which estimates the noise floor — most buckets are empty/noise-only
/// when B >= 4k).
double OccupancyThreshold(const std::vector<Complex>& buckets,
                          double relative_tolerance) {
  std::vector<double> mags(buckets.size());
  double max_mag = 0.0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    mags[i] = std::abs(buckets[i]);
    max_mag = std::max(max_mag, mags[i]);
  }
  const auto mid = mags.begin() + mags.size() / 2;
  std::nth_element(mags.begin(), mid, mags.end());
  return std::max(relative_tolerance * max_mag, 4.0 * (*mid));
}

}  // namespace

SfftResult ExactSparseFft(const std::vector<Complex>& x,
                          const SfftOptions& options) {
  SKETCH_TRACE_SPAN("sfft.exact.recover");
  const uint64_t n = x.size();
  SKETCH_CHECK(IsPowerOfTwo(n));
  SKETCH_CHECK(n >= 4);
  SKETCH_CHECK(options.sparsity >= 1);
  const uint64_t b_initial = options.buckets != 0
                                 ? options.buckets
                                 : AutoBuckets(n, options.sparsity);
  SKETCH_CHECK(IsPowerOfTwo(b_initial) && b_initial <= n);

  Xoshiro256StarStar rng(options.seed);
  std::unordered_map<uint64_t, Complex> found;
  SfftResult result;

  uint64_t b_count = b_initial;
  for (int round = 0; round < options.max_rounds; ++round) {
    SKETCH_TRACE_SPAN("sfft.exact.round");
    SKETCH_COUNTER_INC("sfft.exact.rounds");
    const uint64_t stride = n / b_count;
    const double bucket_scale =
        static_cast<double>(n) / static_cast<double>(b_count);

    const uint64_t sigma = rng.Next() | 1;  // odd => invertible mod n
    const uint64_t sigma_inv = ModInversePow2(sigma & (n - 1), n);
    // Aliasing puts g in bucket g mod B, so the low log2(B) bits of g are
    // already known: decoding starts above them.
    const int start_level = Log2(b_count) + 1;
    const std::vector<uint64_t> shifts =
        PhaseShiftSchedule(n, start_level, &rng);
    const size_t num_shifts = shifts.size();

    // Shifted subsamplings of the permuted signal; the B-point FFT of each
    // aliases the permuted spectrum into B leak-free buckets.
    std::vector<std::vector<Complex>> w(num_shifts);
    for (size_t s = 0; s < num_shifts; ++s) {
      std::vector<Complex> u(b_count);
      for (uint64_t j = 0; j < b_count; ++j) {
        const uint64_t t = (sigma * (j * stride + shifts[s])) & (n - 1);
        u[j] = x[t];
      }
      result.samples_read += b_count;
      w[s] = Fft(u);
    }

    // Peel already-found coefficients out of the bucket values.
    auto subtract = [&](uint64_t g, Complex value) {
      const uint64_t b = g & (b_count - 1);
      for (size_t s = 0; s < num_shifts; ++s) {
        w[s][b] -= (value / bucket_scale) * PhaseUnit(g * shifts[s], n);
      }
    };
    for (const auto& [f, val] : found) {
      subtract((sigma * f) & (n - 1), val);
    }

    const double threshold =
        OccupancyThreshold(w[0], options.magnitude_tolerance);

    bool found_this_round = false;
    std::vector<Complex> bucket_values(num_shifts);
    for (uint64_t b = 0; b < b_count; ++b) {
      const Complex a0 = w[0][b];
      if (std::abs(a0) <= threshold) continue;
      for (size_t s = 0; s < num_shifts; ++s) bucket_values[s] = w[s][b];
      uint64_t g = 0;
      if (!PhaseDecodeSingleton(bucket_values, shifts, n, start_level,
                           /*g_known=*/b, options.singleton_tolerance, &g)) {
        continue;  // collision or noise-dominated
      }

      const Complex value = a0 * bucket_scale;
      const uint64_t f = (sigma_inv * g) & (n - 1);
      found[f] += value;
      if (std::abs(found[f]) < 1e-12) found.erase(f);
      subtract(g, value);
      found_this_round = true;
    }

    result.rounds_used = round + 1;
    // Converged when no bucket retains significant residual energy.
    double residual = 0.0;
    for (uint64_t b = 0; b < b_count; ++b) {
      residual = std::max(residual, std::abs(w[0][b]));
    }
    if (residual <= threshold) {
      result.converged = true;
      break;
    }
    // Dilation by an odd sigma maps residue classes mod B onto each other
    // bijectively, so two frequencies congruent mod B collide in *every*
    // round at fixed B. When a round makes no progress, the collision must
    // be structural: double B (multi-scale aliasing, cf. [Iwe10]) — a pair
    // whose difference is divisible by 2^s separates once B > 2^s. Found
    // coefficients stay peeled, so escalation only pays for the residual.
    if (!found_this_round && b_count < n) b_count <<= 1;
  }

  result.coefficients = SortedCoefficients(found);
  return result;
}

SfftResult FlatFilterSparseFft(const std::vector<Complex>& x,
                               const FlatFilter& filter,
                               const SfftOptions& options) {
  SKETCH_TRACE_SPAN("sfft.flat.recover");
  const uint64_t n = x.size();
  SKETCH_CHECK(n == filter.n());
  SKETCH_CHECK(n >= 4);
  const uint64_t b_count = filter.buckets();
  const uint64_t stride = n / b_count;
  const int64_t half = filter.half_support();
  const std::vector<double>& taps = filter.taps();

  Xoshiro256StarStar rng(options.seed);
  std::unordered_map<uint64_t, Complex> found;
  SfftResult result;

  // Peeling subtracts a found coefficient from every bucket where the
  // filter gain is non-negligible: its own bucket and `kPeelRadius`
  // neighbours on each side.
  constexpr int64_t kPeelRadius = 2;

  for (int round = 0; round < options.max_rounds; ++round) {
    SKETCH_TRACE_SPAN("sfft.flat.round");
    SKETCH_COUNTER_INC("sfft.flat.rounds");
    const uint64_t sigma = rng.Next() | 1;
    const uint64_t sigma_inv = ModInversePow2(sigma & (n - 1), n);
    // Band-binning reveals nothing about the low bits of g: decode all.
    const std::vector<uint64_t> shifts =
        PhaseShiftSchedule(n, /*start_level=*/1, &rng);
    const size_t num_shifts = shifts.size();

    // Windowed, folded, shifted bucketings.
    std::vector<std::vector<Complex>> w(num_shifts);
    for (size_t s = 0; s < num_shifts; ++s) {
      std::vector<Complex> u(b_count, Complex(0, 0));
      for (int64_t t = -half; t <= half; ++t) {
        const uint64_t time =
            (sigma * (static_cast<uint64_t>(t + static_cast<int64_t>(n)) +
                      shifts[s])) &
            (n - 1);
        const uint64_t j = static_cast<uint64_t>(
            ((t % static_cast<int64_t>(b_count)) +
             static_cast<int64_t>(b_count))) %
            b_count;
        u[j] += x[time] * taps[t + half];
      }
      result.samples_read += taps.size();
      w[s] = Fft(u);
    }

    // Peel previously found coefficients.
    auto subtract = [&](uint64_t g, Complex value) {
      const int64_t nearest =
          static_cast<int64_t>((g + stride / 2) / stride);
      for (int64_t db = -kPeelRadius; db <= kPeelRadius; ++db) {
        const int64_t b_signed = nearest + db;
        const uint64_t b =
            static_cast<uint64_t>(b_signed + static_cast<int64_t>(b_count)) %
            b_count;
        const int64_t offset = static_cast<int64_t>(b) *
                                   static_cast<int64_t>(stride) -
                               static_cast<int64_t>(g);
        const double gain = filter.ResponseAt(offset);
        if (std::abs(gain) < 1e-12) continue;
        for (size_t s = 0; s < num_shifts; ++s) {
          w[s][b] -= value * gain / static_cast<double>(n) *
                     PhaseUnit(g * shifts[s], n);
        }
      }
    };
    for (const auto& [f, val] : found) {
      subtract((sigma * f) & (n - 1), val);
    }

    const double threshold =
        OccupancyThreshold(w[0], options.magnitude_tolerance);

    std::vector<Complex> bucket_values(num_shifts);
    for (uint64_t b = 0; b < b_count; ++b) {
      const Complex a0 = w[0][b];
      if (std::abs(a0) <= threshold) continue;
      for (size_t s = 0; s < num_shifts; ++s) bucket_values[s] = w[s][b];
      uint64_t g = 0;
      if (!PhaseDecodeSingleton(bucket_values, shifts, n, /*start_level=*/1,
                           /*g_known=*/0, options.singleton_tolerance, &g)) {
        continue;
      }
      // The located frequency must fall inside this bucket's passband.
      int64_t offset = static_cast<int64_t>(b * stride) -
                       static_cast<int64_t>(g);
      const int64_t half_n = static_cast<int64_t>(n / 2);
      if (offset > half_n) offset -= static_cast<int64_t>(n);
      if (offset < -half_n) offset += static_cast<int64_t>(n);
      const double gain = filter.ResponseAt(offset);
      if (gain < 0.5) continue;  // edge of passband / wrong bucket

      const Complex value = a0 * static_cast<double>(n) / gain;
      const uint64_t f = (sigma_inv * g) & (n - 1);
      found[f] += value;
      // A ghost corrected back to (near) zero is dropped entirely.
      if (std::abs(found[f]) < 1e-9) found.erase(f);
      subtract(g, value);
    }

    result.rounds_used = round + 1;
    double residual = 0.0;
    for (uint64_t b = 0; b < b_count; ++b) {
      residual = std::max(residual, std::abs(w[0][b]));
    }
    if (found.size() >= options.sparsity && residual <= threshold) {
      result.converged = true;
      break;
    }
  }

  // Keep the strongest 2k coefficients (noise rounds can admit a few
  // spurious small ones).
  std::vector<SpectralCoefficient> coeffs = SortedCoefficients(found);
  if (coeffs.size() > 2 * options.sparsity) {
    std::nth_element(
        coeffs.begin(), coeffs.begin() + 2 * options.sparsity, coeffs.end(),
        [](const SpectralCoefficient& a, const SpectralCoefficient& b) {
          return std::norm(a.value) > std::norm(b.value);
        });
    coeffs.resize(2 * options.sparsity);
    std::sort(coeffs.begin(), coeffs.end(),
              [](const SpectralCoefficient& a, const SpectralCoefficient& b) {
                return a.frequency < b.frequency;
              });
  }
  result.coefficients = std::move(coeffs);
  return result;
}

SfftResult DenseFftTopK(const std::vector<Complex>& x, uint64_t k) {
  SfftResult result;
  const std::vector<Complex> spectrum = Fft(x);
  result.coefficients = TopKCoefficients(spectrum, k);
  result.samples_read = x.size();
  result.rounds_used = 1;
  result.converged = true;
  return result;
}

}  // namespace sketch
