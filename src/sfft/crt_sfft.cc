#include "sfft/crt_sfft.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <unordered_map>

#include "common/check.h"
#include "fft/fft.h"

namespace sketch {

namespace {

/// e^{2*pi*i*(num mod n)/n}.
Complex Phase(uint64_t num, uint64_t n) {
  const double angle = 2.0 * std::numbers::pi *
                       static_cast<double>(num % n) / static_cast<double>(n);
  return Complex(std::cos(angle), std::sin(angle));
}

/// Extended gcd: returns g = gcd(a, b) and x with a*x ≡ g (mod b).
int64_t ModInverse(int64_t a, int64_t m) {
  int64_t old_r = a % m, r = m;
  int64_t old_s = 1, s = 0;
  while (r != 0) {
    const int64_t q = old_r / r;
    int64_t tmp = old_r - q * r;
    old_r = r;
    r = tmp;
    tmp = old_s - q * s;
    old_s = s;
    s = tmp;
  }
  SKETCH_CHECK_MSG(old_r == 1, "moduli not co-prime");
  return ((old_s % m) + m) % m;
}

/// CRT recombination: the unique f mod prod(moduli) with
/// f ≡ residues[i] (mod moduli[i]).
uint64_t CrtCombine(const std::vector<uint64_t>& residues,
                    const std::vector<uint64_t>& moduli, uint64_t n) {
  // Accumulate with 128-bit intermediates: n can approach 2^40+.
  __uint128_t f = 0;
  for (size_t i = 0; i < moduli.size(); ++i) {
    const uint64_t big_m = n / moduli[i];
    const uint64_t inv = static_cast<uint64_t>(ModInverse(
        static_cast<int64_t>(big_m % moduli[i]),
        static_cast<int64_t>(moduli[i])));
    f += static_cast<__uint128_t>(residues[i]) * big_m % n * inv % n;
  }
  return static_cast<uint64_t>(f % n);
}

}  // namespace

std::vector<uint64_t> CoprimeFactorization(uint64_t n) {
  std::vector<uint64_t> factors;
  uint64_t rest = n;
  for (uint64_t p = 2; p * p <= rest; ++p) {
    if (rest % p != 0) continue;
    uint64_t power = 1;
    while (rest % p == 0) {
      power *= p;
      rest /= p;
    }
    factors.push_back(power);
  }
  if (rest > 1) factors.push_back(rest);
  std::sort(factors.rbegin(), factors.rend());
  return factors;
}

CrtSfftResult CrtSparseFft(const std::vector<Complex>& x,
                           const CrtSfftOptions& options) {
  const uint64_t n = x.size();
  SKETCH_CHECK(n >= 6);
  CrtSfftResult result;
  result.moduli_used = CoprimeFactorization(n);
  SKETCH_CHECK_MSG(result.moduli_used.size() >= 2,
                   "n must have >= 2 co-prime factors (use ExactSparseFft "
                   "for prime-power lengths)");
  const std::vector<uint64_t>& moduli = result.moduli_used;
  const size_t num_moduli = moduli.size();

  // Aliased bucketings at shifts 0 and 1 for every modulus.
  std::vector<std::vector<Complex>> w0(num_moduli), w1(num_moduli);
  for (size_t i = 0; i < num_moduli; ++i) {
    const uint64_t p = moduli[i];
    const uint64_t stride = n / p;
    std::vector<Complex> u0(p), u1(p);
    for (uint64_t j = 0; j < p; ++j) {
      u0[j] = x[(j * stride) % n];
      u1[j] = x[(j * stride + 1) % n];
    }
    result.samples_read += 2 * p;
    w0[i] = Fft(u0);
    w1[i] = Fft(u1);
  }

  // Global scale for emptiness decisions.
  double max_mag = 0.0;
  for (const auto& w : w0) {
    for (const Complex& v : w) max_mag = std::max(max_mag, std::abs(v));
  }
  const double tol = std::max(options.magnitude_tolerance * max_mag, 1e-300);

  std::unordered_map<uint64_t, Complex> found;
  auto subtract = [&](uint64_t f, Complex value) {
    for (size_t i = 0; i < num_moduli; ++i) {
      const uint64_t p = moduli[i];
      const double scale = static_cast<double>(p) / static_cast<double>(n);
      const uint64_t r = f % p;
      w0[i][r] -= value * scale;
      w1[i][r] -= value * scale * Phase(f, n);
    }
  };

  for (int round = 0; round < options.max_rounds; ++round) {
    bool progressed = false;
    // Anchor on each modulus in turn: a coefficient colliding in one
    // subsampling is usually isolated in another, and once peeled there
    // it frees its collision partners everywhere else.
    for (size_t anchor = 0; anchor < num_moduli; ++anchor) {
      for (uint64_t ra = 0; ra < moduli[anchor]; ++ra) {
        const Complex a0 = w0[anchor][ra];
        if (std::abs(a0) <= tol) continue;
        // The shift-1 ratio e^{2 pi i f / n} identifies f uniquely; a
        // non-unit magnitude exposes a collision.
        const Complex phi = w1[anchor][ra] / a0;
        if (std::abs(std::abs(phi) - 1.0) > 1e-6) continue;

        // Match the same phase in every other modulus to read f's digits.
        std::vector<uint64_t> residues(num_moduli);
        residues[anchor] = ra;
        bool matched = true;
        for (size_t i = 0; i < num_moduli && matched; ++i) {
          if (i == anchor) continue;
          matched = false;
          for (uint64_t r = 0; r < moduli[i]; ++r) {
            if (std::abs(w0[i][r]) <= tol) continue;
            const Complex phi_i = w1[i][r] / w0[i][r];
            if (std::abs(phi_i - phi) < 1e-6) {
              residues[i] = r;
              matched = true;
              break;
            }
          }
        }
        uint64_t f = 0;
        if (matched) {
          f = CrtCombine(residues, moduli, n);
        } else {
          // Isolated here but colliding in some other modulus: the CRT
          // digits are unreadable, but for an exactly-sparse signal the
          // shift-1 phase pins f directly (arg precision ~1e-15 radians
          // vs the needed 2*pi/n).
          double angle = std::arg(phi) / (2.0 * std::numbers::pi);
          if (angle < 0.0) angle += 1.0;
          f = static_cast<uint64_t>(
                  std::llround(angle * static_cast<double>(n))) %
              n;
          if (f % moduli[anchor] != ra) continue;  // inconsistent
        }
        // Strong validation: the frequency must reproduce the measured
        // phase exactly.
        if (std::abs(Phase(f, n) - phi) > 1e-6) continue;

        const Complex value = a0 * static_cast<double>(n) /
                              static_cast<double>(moduli[anchor]);
        found[f] += value;
        if (std::abs(found[f]) <= tol) found.erase(f);
        subtract(f, value);
        progressed = true;
      }
    }
    if (!progressed) break;
  }

  double residual = 0.0;
  for (const auto& w : w0) {
    for (const Complex& v : w) residual = std::max(residual, std::abs(v));
  }
  result.converged = residual <= tol;

  result.coefficients.reserve(found.size());
  for (const auto& [f, v] : found) result.coefficients.push_back({f, v});
  std::sort(result.coefficients.begin(), result.coefficients.end(),
            [](const SpectralCoefficient& a, const SpectralCoefficient& b) {
              return a.frequency < b.frequency;
            });
  return result;
}

}  // namespace sketch
