#ifndef SKETCH_SFFT_MODULAR_H_
#define SKETCH_SFFT_MODULAR_H_

#include <cstdint>

#include "common/check.h"

namespace sketch {

/// Multiplicative inverse of odd `a` modulo the power of two `n`
/// (Newton–Hensel iteration; converges in 6 steps for 64-bit moduli).
/// Spectrum permutations x[t] -> x[sigma * t mod n] need sigma odd so the
/// map is a bijection, and recovery needs sigma^{-1} to map permuted
/// frequencies back.
inline uint64_t ModInversePow2(uint64_t a, uint64_t n) {
  SKETCH_CHECK(n != 0 && (n & (n - 1)) == 0);
  SKETCH_CHECK(a & 1);
  uint64_t inv = a;  // correct mod 2^3 already (a*a ≡ 1 mod 8 for odd a)
  for (int i = 0; i < 6; ++i) inv *= 2 - a * inv;  // doubles the precision
  return inv & (n - 1);
}

/// (a * b) mod n for power-of-two n via masking.
inline uint64_t MulModPow2(uint64_t a, uint64_t b, uint64_t n) {
  return (a * b) & (n - 1);
}

}  // namespace sketch

#endif  // SKETCH_SFFT_MODULAR_H_
