#include "sfft/sfft2d.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <unordered_map>

#include "common/check.h"
#include "common/prng.h"
#include "sfft/phase_decode.h"

namespace sketch {

namespace {

/// Packs (f1, f2) into one key for the found-coefficient map.
uint64_t Key(uint64_t f1, uint64_t f2) { return (f1 << 32) | f2; }

double MaxMagnitude(const std::vector<Complex>& v) {
  double m = 0.0;
  for (const Complex& c : v) m = std::max(m, std::abs(c));
  return m;
}

double MedianMagnitude(std::vector<double> mags) {
  const auto mid = mags.begin() + mags.size() / 2;
  std::nth_element(mags.begin(), mid, mags.end());
  return *mid;
}

double Threshold2d(const std::vector<Complex>& buckets, double rel_tol) {
  std::vector<double> mags(buckets.size());
  for (size_t i = 0; i < buckets.size(); ++i) mags[i] = std::abs(buckets[i]);
  return std::max(rel_tol * MaxMagnitude(buckets),
                  4.0 * MedianMagnitude(std::move(mags)));
}

}  // namespace

SparseSpectrum2dSignal MakeSparseSpectrum2dSignal(uint64_t n1, uint64_t n2,
                                                  uint64_t k, uint64_t seed) {
  SKETCH_CHECK(IsPowerOfTwo(n1) && IsPowerOfTwo(n2));
  SKETCH_CHECK(k <= n1 * n2);
  Xoshiro256StarStar rng(seed);
  SparseSpectrum2dSignal signal;
  std::unordered_map<uint64_t, bool> used;
  while (signal.coefficients.size() < k) {
    const uint64_t f1 = rng.NextBounded(n1);
    const uint64_t f2 = rng.NextBounded(n2);
    if (used[Key(f1, f2)]) continue;
    used[Key(f1, f2)] = true;
    const double phase = 2.0 * std::numbers::pi * rng.NextDouble();
    signal.coefficients.push_back(
        {f1, f2, Complex(std::cos(phase), std::sin(phase))});
  }
  std::sort(signal.coefficients.begin(), signal.coefficients.end(),
            [](const SpectralCoefficient2d& a, const SpectralCoefficient2d& b) {
              return a.f1 != b.f1 ? a.f1 < b.f1 : a.f2 < b.f2;
            });
  // x[t1,t2] = (1/(n1 n2)) sum xhat e^{+2 pi i (f1 t1/n1 + f2 t2/n2)}.
  signal.time_domain.assign(n1 * n2, Complex(0, 0));
  for (const SpectralCoefficient2d& c : signal.coefficients) {
    for (uint64_t t1 = 0; t1 < n1; ++t1) {
      const Complex row_phase = PhaseUnit(c.f1 * t1, n1);
      Complex* row = &signal.time_domain[t1 * n2];
      for (uint64_t t2 = 0; t2 < n2; ++t2) {
        row[t2] += c.value * row_phase * PhaseUnit(c.f2 * t2, n2);
      }
    }
  }
  const double inv = 1.0 / static_cast<double>(n1 * n2);
  for (Complex& v : signal.time_domain) v *= inv;
  return signal;
}

std::vector<Complex> Dense2dFft(const std::vector<Complex>& x, uint64_t n1,
                                uint64_t n2) {
  SKETCH_CHECK(x.size() == n1 * n2);
  std::vector<Complex> out(n1 * n2);
  // Row transforms.
  for (uint64_t r = 0; r < n1; ++r) {
    std::vector<Complex> row(x.begin() + r * n2, x.begin() + (r + 1) * n2);
    const std::vector<Complex> rhat = Fft(row);
    std::copy(rhat.begin(), rhat.end(), out.begin() + r * n2);
  }
  // Column transforms.
  std::vector<Complex> col(n1);
  for (uint64_t c = 0; c < n2; ++c) {
    for (uint64_t r = 0; r < n1; ++r) col[r] = out[r * n2 + c];
    const std::vector<Complex> chat = Fft(col);
    for (uint64_t r = 0; r < n1; ++r) out[r * n2 + c] = chat[r];
  }
  return out;
}

std::vector<SpectralCoefficient2d> TopK2dCoefficients(
    const std::vector<Complex>& spectrum, uint64_t n1, uint64_t n2,
    uint64_t k) {
  SKETCH_CHECK(spectrum.size() == n1 * n2);
  std::vector<uint64_t> order(spectrum.size());
  for (uint64_t i = 0; i < order.size(); ++i) order[i] = i;
  if (k < order.size()) {
    std::nth_element(order.begin(), order.begin() + k, order.end(),
                     [&](uint64_t a, uint64_t b) {
                       return std::norm(spectrum[a]) > std::norm(spectrum[b]);
                     });
    order.resize(k);
  }
  std::sort(order.begin(), order.end());
  std::vector<SpectralCoefficient2d> out;
  out.reserve(order.size());
  for (uint64_t i : order) {
    out.push_back({i / n2, i % n2, spectrum[i]});
  }
  return out;
}

double Spectrum2dL2Error(const std::vector<SpectralCoefficient2d>& recovered,
                         const SparseSpectrum2dSignal& signal) {
  std::unordered_map<uint64_t, Complex> truth;
  for (const SpectralCoefficient2d& c : signal.coefficients) {
    truth[Key(c.f1, c.f2)] = c.value;
  }
  double err2 = 0.0;
  std::unordered_map<uint64_t, bool> seen;
  for (const SpectralCoefficient2d& c : recovered) {
    const auto it = truth.find(Key(c.f1, c.f2));
    const Complex t = it == truth.end() ? Complex(0, 0) : it->second;
    err2 += std::norm(c.value - t);
    seen[Key(c.f1, c.f2)] = true;
  }
  for (const SpectralCoefficient2d& c : signal.coefficients) {
    if (!seen.count(Key(c.f1, c.f2))) err2 += std::norm(c.value);
  }
  return std::sqrt(err2);
}

Sfft2dResult ExactSparseFft2d(const std::vector<Complex>& x, uint64_t n1,
                              uint64_t n2, const Sfft2dOptions& options) {
  SKETCH_CHECK(IsPowerOfTwo(n1) && IsPowerOfTwo(n2));
  SKETCH_CHECK(n1 >= 4 && n2 >= 4);
  SKETCH_CHECK(x.size() == n1 * n2);

  Xoshiro256StarStar rng(options.seed);
  std::unordered_map<uint64_t, Complex> found;  // Key(f1,f2) -> value
  Sfft2dResult result;
  // Shearing requires the shear step a = b * (n2 / n1) to be integral.
  const bool can_shear = n2 % n1 == 0;

  for (int round = 0; round < options.max_rounds; ++round) {
    // Shear b: spectrum coefficient (F1, F2) appears in the sheared
    // grid's spectrum at row g1 = (F1 + b*F2) mod n1, column F2. Round 0
    // is unsheared; later rounds re-randomize the collision pattern.
    const uint64_t b_shear =
        (round == 0 || !can_shear) ? 0 : rng.NextBounded(n1);
    const uint64_t a_step = b_shear * (n2 / n1);

    const std::vector<uint64_t> row_ids =
        PhaseShiftSchedule(n1, /*start_level=*/1, &rng);
    const std::vector<uint64_t> col_ids =
        PhaseShiftSchedule(n2, /*start_level=*/1, &rng);

    // Row view: FFT over t2 of sheared row r — buckets indexed by f2.
    std::vector<std::vector<Complex>> row_view(row_ids.size());
    for (size_t s = 0; s < row_ids.size(); ++s) {
      const uint64_t r = row_ids[s];
      std::vector<Complex> row(n2);
      const uint64_t offset = (a_step * r) & (n2 - 1);
      for (uint64_t t2 = 0; t2 < n2; ++t2) {
        row[t2] = x[r * n2 + ((t2 + offset) & (n2 - 1))];
      }
      result.samples_read += n2;
      row_view[s] = Fft(row);
    }
    // Column view: FFT over t1 of sheared column c — buckets by g1.
    std::vector<std::vector<Complex>> col_view(col_ids.size());
    for (size_t s = 0; s < col_ids.size(); ++s) {
      const uint64_t c = col_ids[s];
      std::vector<Complex> col(n1);
      for (uint64_t t1 = 0; t1 < n1; ++t1) {
        col[t1] = x[t1 * n2 + ((c + a_step * t1) & (n2 - 1))];
      }
      result.samples_read += n1;
      col_view[s] = Fft(col);
    }

    // Subtract a coefficient from both views.
    auto subtract = [&](uint64_t f1, uint64_t f2, Complex value) {
      const uint64_t g1 = (f1 + b_shear * f2) & (n1 - 1);
      for (size_t s = 0; s < row_ids.size(); ++s) {
        row_view[s][f2] -= value / static_cast<double>(n1) *
                           PhaseUnit(g1 * row_ids[s], n1);
      }
      for (size_t s = 0; s < col_ids.size(); ++s) {
        col_view[s][g1] -= value / static_cast<double>(n2) *
                           PhaseUnit(f2 * col_ids[s], n2);
      }
    };
    for (const auto& [key, value] : found) {
      subtract(key >> 32, key & 0xffffffffULL, value);
    }

    const double row_threshold =
        Threshold2d(row_view[0], options.magnitude_tolerance);
    const double col_threshold =
        Threshold2d(col_view[0], options.magnitude_tolerance);

    // Alternate row/column peeling passes within the round.
    bool progressed_in_round = false;
    for (int pass = 0; pass < 8; ++pass) {
      bool changed = false;

      std::vector<Complex> values(row_ids.size());
      for (uint64_t f2 = 0; f2 < n2; ++f2) {
        const Complex a0 = row_view[0][f2];
        if (std::abs(a0) <= row_threshold) continue;
        for (size_t s = 0; s < row_ids.size(); ++s) {
          values[s] = row_view[s][f2];
        }
        uint64_t g1 = 0;
        if (!PhaseDecodeSingleton(values, row_ids, n1, /*start_level=*/1,
                                  /*g_known=*/0,
                                  options.singleton_tolerance, &g1)) {
          continue;
        }
        const uint64_t f1 = (g1 + n1 - ((b_shear * f2) & (n1 - 1))) &
                            (n1 - 1);
        const Complex value = a0 * static_cast<double>(n1);
        found[Key(f1, f2)] += value;
        if (std::abs(found[Key(f1, f2)]) < 1e-12) found.erase(Key(f1, f2));
        subtract(f1, f2, value);
        changed = true;
      }

      std::vector<Complex> cvalues(col_ids.size());
      for (uint64_t g1 = 0; g1 < n1; ++g1) {
        const Complex a0 = col_view[0][g1];
        if (std::abs(a0) <= col_threshold) continue;
        for (size_t s = 0; s < col_ids.size(); ++s) {
          cvalues[s] = col_view[s][g1];
        }
        uint64_t f2 = 0;
        if (!PhaseDecodeSingleton(cvalues, col_ids, n2, /*start_level=*/1,
                                  /*g_known=*/0,
                                  options.singleton_tolerance, &f2)) {
          continue;
        }
        const uint64_t f1 = (g1 + n1 - ((b_shear * f2) & (n1 - 1))) &
                            (n1 - 1);
        const Complex value = a0 * static_cast<double>(n2);
        found[Key(f1, f2)] += value;
        if (std::abs(found[Key(f1, f2)]) < 1e-12) found.erase(Key(f1, f2));
        subtract(f1, f2, value);
        changed = true;
      }

      progressed_in_round |= changed;
      if (!changed) break;
    }
    (void)progressed_in_round;

    result.rounds_used = round + 1;
    double residual = 0.0;
    for (const Complex& v : row_view[0]) {
      residual = std::max(residual, std::abs(v));
    }
    for (const Complex& v : col_view[0]) {
      residual = std::max(residual, std::abs(v));
    }
    if (residual <= std::max(row_threshold, col_threshold)) {
      result.converged = true;
      break;
    }
  }

  result.coefficients.reserve(found.size());
  for (const auto& [key, value] : found) {
    result.coefficients.push_back({key >> 32, key & 0xffffffffULL, value});
  }
  std::sort(result.coefficients.begin(), result.coefficients.end(),
            [](const SpectralCoefficient2d& a, const SpectralCoefficient2d& b) {
              return a.f1 != b.f1 ? a.f1 < b.f1 : a.f2 < b.f2;
            });
  return result;
}

}  // namespace sketch
