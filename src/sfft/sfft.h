#ifndef SKETCH_SFFT_SFFT_H_
#define SKETCH_SFFT_SFFT_H_

#include <cstdint>
#include <vector>

#include "fft/fft.h"
#include "sfft/flat_filter.h"
#include "sfft/spectrum_utils.h"

namespace sketch {

/// Options shared by the sparse Fourier transforms.
struct SfftOptions {
  uint64_t sparsity = 8;  ///< target number of spectral coefficients k
  /// Buckets B per round; 0 = auto (smallest power of two >= 4k).
  uint64_t buckets = 0;
  int max_rounds = 12;   ///< permutation rounds before giving up
  uint64_t seed = 0x5eedULL;
  /// Relative magnitude below which a bucket is considered empty.
  double magnitude_tolerance = 1e-7;
  /// Relative tolerance for the singleton tests in FlatFilterSparseFft
  /// (phase-magnitude consistency across shifts). Tight values reject
  /// colliding buckets reliably on clean signals; raise towards ~0.3 for
  /// very noisy inputs so true singletons are not rejected.
  double singleton_tolerance = 0.05;
};

/// Result of a sparse Fourier transform.
struct SfftResult {
  std::vector<SpectralCoefficient> coefficients;  ///< sorted by frequency
  uint64_t samples_read = 0;  ///< #time-domain samples touched (sub-linear!)
  int rounds_used = 0;
  bool converged = false;  ///< residual bucket energy fully peeled
};

/// Exact sparse FFT for exactly-sparse spectra, via *aliasing filters*
/// (the leakage-free binning of [Iwe10, LWC12, GHI+13] that §4 says
/// "completely eliminates" leakage).
///
/// Each round subsamples the permuted signal x[sigma·t mod n] at stride
/// n/B with three time shifts; a B-point FFT of each subsampling aliases
/// the spectrum into B buckets *exactly* (no leakage). A bucket holding a
/// single coefficient reveals its location through the phase difference
/// between shifts; found coefficients are peeled, and fresh random
/// permutations re-randomize collisions each round.
///
/// Reads O(B) samples and does O(B log B) work per round — sub-linear in n
/// for k = o(n). Requires power-of-two n.
SfftResult ExactSparseFft(const std::vector<Complex>& x,
                          const SfftOptions& options);

/// Sparse FFT for noisy / approximately sparse spectra, via the flat-window
/// filters of [HIKP12b] ("simple and practical" SODA'12 algorithm shape).
///
/// Each round multiplies the permuted signal by a small-support flat
/// window, folds it to B points, and FFTs: each spectral coefficient lands
/// in one bucket with near-unit gain and leaks at most `delta` elsewhere.
/// Location again uses the phase between two shifted bucketings;
/// estimation divides out the exact filter gain at the located offset.
///
/// `filter` must have been built for (x.size(), B) — construction is a
/// one-time cost reused across transforms (see FlatFilter).
SfftResult FlatFilterSparseFft(const std::vector<Complex>& x,
                               const FlatFilter& filter,
                               const SfftOptions& options);

/// Baseline: full FFT followed by top-k selection. O(n log n), reads all
/// n samples — the comparison line in experiments E9/E10.
SfftResult DenseFftTopK(const std::vector<Complex>& x, uint64_t k);

}  // namespace sketch

#endif  // SKETCH_SFFT_SFFT_H_
