#include "sfft/flat_filter.h"

#include <cmath>
#include <numbers>

#include "common/check.h"
#include "fft/fft.h"

namespace sketch {

FlatFilter::FlatFilter(uint64_t n, uint64_t buckets, int support_factor,
                       double leakage_delta)
    : n_(n), buckets_(buckets) {
  SKETCH_CHECK(IsPowerOfTwo(n));
  SKETCH_CHECK(IsPowerOfTwo(buckets) && buckets <= n);
  SKETCH_CHECK(support_factor >= 1);
  SKETCH_CHECK(leakage_delta > 0.0 && leakage_delta < 0.5);

  // Size the window from the flatness requirement rather than the bucket
  // width: the Gaussian's spectral std sigma_f must be a small fraction of
  // the bucket width n/B, which forces a time std sigma_t ~ B and hence a
  // support of O(B log(1/delta)) samples — *independent of n*. This is
  // what makes the algorithm's sample cost sub-linear: each bucketing
  // touches O(B log(1/delta)) samples, not O(n).
  const double log_term = std::sqrt(2.0 * std::log(1.0 / leakage_delta));
  const double sigma_t_target = 16.0 * static_cast<double>(buckets) *
                                static_cast<double>(support_factor) /
                                (2.0 * std::numbers::pi);
  int64_t half = static_cast<int64_t>(std::ceil(sigma_t_target * log_term));
  const int64_t max_half = static_cast<int64_t>((n - 1) / 2);
  if (half > max_half) half = max_half;
  if (half < 1) half = 1;
  const uint64_t w = static_cast<uint64_t>(2 * half + 1);

  // Gaussian whose tail reaches leakage_delta exactly at the truncation
  // edge.
  const double sigma_t = static_cast<double>(half) / log_term;
  // Spectral width of the Gaussian; the boxcar is widened by a few of
  // these so the smoothed edge still covers the whole bucket (keeps the
  // passband flat where in-bucket coefficients land).
  const double sigma_f =
      static_cast<double>(n) / (2.0 * std::numbers::pi * sigma_t);
  const double box_half =
      static_cast<double>(n) / (2.0 * static_cast<double>(buckets)) +
      4.0 * sigma_f;
  const double dirichlet_terms = 2.0 * box_half + 1.0;
  const double pi = std::numbers::pi;

  taps_.resize(w);
  for (int64_t t = -half; t <= half; ++t) {
    const double gauss = std::exp(-0.5 * (static_cast<double>(t) / sigma_t) *
                                  (static_cast<double>(t) / sigma_t));
    double dirichlet = 1.0;
    if (t != 0) {
      const double theta = pi * static_cast<double>(t) / static_cast<double>(n);
      dirichlet = std::sin(dirichlet_terms * theta) /
                  (dirichlet_terms * std::sin(theta));
    }
    taps_[t + half] = gauss * dirichlet;
  }

  // Frequency response via one length-n FFT of the zero-centered window.
  std::vector<Complex> padded(n, Complex(0, 0));
  for (int64_t t = -half; t <= half; ++t) {
    const uint64_t idx = static_cast<uint64_t>(t + static_cast<int64_t>(n)) % n;
    padded[idx] = Complex(taps_[t + half], 0.0);
  }
  std::vector<Complex> spectrum = Fft(padded);
  // Symmetric real window => real spectrum; normalize passband center to 1.
  const double center_gain = spectrum[0].real();
  SKETCH_CHECK(center_gain > 0.0);
  response_.resize(n);
  for (uint64_t f = 0; f < n; ++f) {
    response_[f] = spectrum[f].real() / center_gain;
  }
  for (double& tap : taps_) tap /= center_gain;
}

double FlatFilter::PassbandRipple() const {
  const int64_t pass = static_cast<int64_t>(n_ / (2 * buckets_));
  double worst = 0.0;
  for (int64_t o = -pass; o <= pass; ++o) {
    worst = std::max(worst, std::abs(ResponseAt(o) - 1.0));
  }
  return worst;
}

double FlatFilter::StopbandLeakage() const {
  // Transition band: one extra bucket width on each side of the passband.
  const int64_t stop_begin = static_cast<int64_t>(3 * n_ / (2 * buckets_));
  double worst = 0.0;
  const int64_t half_n = static_cast<int64_t>(n_ / 2);
  for (int64_t o = stop_begin; o <= half_n; ++o) {
    worst = std::max(worst, std::abs(ResponseAt(o)));
  }
  return worst;
}

}  // namespace sketch
