#ifndef SKETCH_SFFT_SPECTRUM_UTILS_H_
#define SKETCH_SFFT_SPECTRUM_UTILS_H_

#include <cstdint>
#include <vector>

#include "fft/fft.h"

namespace sketch {

/// One recovered (or planted) spectral coefficient.
struct SpectralCoefficient {
  uint64_t frequency = 0;
  Complex value{0.0, 0.0};
};

/// A k-sparse spectrum plus its time-domain realization.
struct SparseSpectrumSignal {
  std::vector<SpectralCoefficient> coefficients;  ///< sorted by frequency
  std::vector<Complex> time_domain;               ///< length n
};

/// Generates a signal of length n whose DFT has exactly k nonzero
/// coefficients at distinct random frequencies with unit magnitude and
/// random phase — the standard sFFT benchmark input [HIKP12b].
/// Time domain is synthesized directly in O(nk) (exact, no FFT error).
SparseSpectrumSignal MakeSparseSpectrumSignal(uint64_t n, uint64_t k,
                                              uint64_t seed);

/// Adds complex white Gaussian noise of per-component std `sigma` to the
/// time-domain signal.
void AddComplexNoise(std::vector<Complex>* x, double sigma, uint64_t seed);

/// ℓ2 distance between a recovered coefficient list and the true spectrum
/// of `signal`, over all n frequencies (missed coefficients count fully).
double SpectrumL2Error(const std::vector<SpectralCoefficient>& recovered,
                       const SparseSpectrumSignal& signal);

/// Top-k coefficients of a dense spectrum by magnitude (the "full FFT"
/// baseline output format).
std::vector<SpectralCoefficient> TopKCoefficients(
    const std::vector<Complex>& spectrum, uint64_t k);

}  // namespace sketch

#endif  // SKETCH_SFFT_SPECTRUM_UTILS_H_
