#ifndef SKETCH_SFFT_CRT_SFFT_H_
#define SKETCH_SFFT_CRT_SFFT_H_

#include <cstdint>
#include <vector>

#include "sfft/spectrum_utils.h"

namespace sketch {

/// Options for the CRT-based sparse FFT.
struct CrtSfftOptions {
  uint64_t sparsity = 8;
  /// Relative magnitude below which a bucket is considered empty.
  double magnitude_tolerance = 1e-7;
  /// Peeling iterations across the modulus set.
  int max_rounds = 8;
};

/// Result of a CRT sparse FFT run.
struct CrtSfftResult {
  std::vector<SpectralCoefficient> coefficients;
  uint64_t samples_read = 0;
  bool converged = false;
  std::vector<uint64_t> moduli_used;  ///< the co-prime subsampling lengths
};

/// Combinatorial sparse FFT via the Chinese Remainder Theorem, in the
/// style of [Iwe10, LWC12] (survey §4: aliasing filters that "completely
/// eliminate" leakage, used *deterministically*).
///
/// For each divisor p of n in a pairwise co-prime set with product > n,
/// subsampling x at stride n/p aliases the spectrum into p leak-free
/// buckets indexed by f mod p — so each subsampling directly reads one
/// CRT *digit* of every isolated coefficient's frequency, and the digits
/// recombine through the CRT, no phase estimation needed. A time shift of
/// 1 supplies the value check that flags collisions; colliding
/// coefficients are peeled across moduli until the residual drains.
///
/// Requires n to factor into at least two pairwise co-prime divisors with
/// product >= n (e.g., n = 2^a 3^b 5^c ...); returns converged = false if
/// peeling stalls (all-collide configurations). Reads
/// O(sum_i p_i) = O~(k n^{1/#moduli})-ish samples — sub-linear for
/// suitable n — and never reads the whole signal.
CrtSfftResult CrtSparseFft(const std::vector<Complex>& x,
                           const CrtSfftOptions& options);

/// Splits n into its maximal pairwise co-prime prime-power divisors,
/// e.g., 720 = 16 * 9 * 5 -> {16, 9, 5}. Exposed for tests and for
/// callers validating an n before use.
std::vector<uint64_t> CoprimeFactorization(uint64_t n);

}  // namespace sketch

#endif  // SKETCH_SFFT_CRT_SFFT_H_
