#ifndef SKETCH_SFFT_SPARSE_WHT_H_
#define SKETCH_SFFT_SPARSE_WHT_H_

#include <cstdint>
#include <vector>

namespace sketch {

/// One Walsh–Hadamard (Boolean-cube Fourier) coefficient.
struct WhtCoefficient {
  uint64_t index = 0;  ///< the character s; chi_s(x) = (-1)^{popcount(s&x)}
  double value = 0.0;  ///< fhat(s) = E_x[f(x) chi_s(x)]
};

/// Options for the Kushilevitz–Mansour search.
struct SparseWhtOptions {
  /// Keep coefficients with |fhat(s)| >= threshold.
  double threshold = 0.25;
  /// Monte-Carlo samples per bucket-weight estimate.
  int samples_per_estimate = 1024;
  /// Samples for the final coefficient-value estimates (0 = exact O(N)
  /// summation per surviving coefficient).
  int samples_per_coefficient = 4096;
  uint64_t seed = 0x5eedULL;
  /// Safety cap on tree expansion (buckets kept per level).
  uint64_t max_buckets_per_level = 4096;
};

/// Result of a sparse WHT run.
struct SparseWhtResult {
  std::vector<WhtCoefficient> coefficients;  ///< sorted by index
  uint64_t samples_read = 0;  ///< oracle queries (sub-linear for sparse f)
};

/// The Kushilevitz–Mansour / Goldreich–Levin algorithm [KM91, GL89]
/// (survey §4: "the first algorithms of this type were designed for the
/// Hadamard transform"). Finds all characters s with |fhat(s)| >=
/// threshold by recursive bucket splitting: the bucket of characters
/// agreeing with prefix `a` on their low k bits has Fourier weight
///   W_a = E_{x1, x2, z} [ f(z:x1) f(z:x2) chi_a(x1 xor x2) ],
/// estimable by sampling — "hashing in the frequency domain" where the
/// buckets are prefix classes. Buckets whose weight clears threshold^2/2
/// are split; surviving leaves are the heavy characters.
///
/// \param f  the function table, length a power of two (f[x] = f(x)).
///           Only sampled positions are read.
SparseWhtResult KushilevitzMansour(const std::vector<double>& f,
                                   const SparseWhtOptions& options);

/// Dense baseline: the full fast WHT, returning *all* N coefficients
/// fhat(s) = (1/N) sum_x f(x) chi_s(x). O(N log N).
std::vector<double> DenseWht(const std::vector<double>& f);

/// Synthesizes the table of f(x) = sum_s coeffs[s] * chi_s(x); the test
/// and benchmark signal generator. O(N * #coeffs).
std::vector<double> SynthesizeFromWhtCoefficients(
    uint64_t n, const std::vector<WhtCoefficient>& coeffs);

}  // namespace sketch

#endif  // SKETCH_SFFT_SPARSE_WHT_H_
