#ifndef SKETCH_SFFT_SFFT2D_H_
#define SKETCH_SFFT_SFFT2D_H_

#include <cstdint>
#include <vector>

#include "fft/fft.h"

namespace sketch {

/// One recovered 2D spectral coefficient.
struct SpectralCoefficient2d {
  uint64_t f1 = 0;  ///< row frequency, in [0, n1)
  uint64_t f2 = 0;  ///< column frequency, in [0, n2)
  Complex value{0.0, 0.0};
};

/// A k-sparse 2D spectrum plus its (row-major n1 x n2) time-domain grid.
struct SparseSpectrum2dSignal {
  std::vector<SpectralCoefficient2d> coefficients;  ///< sorted (f1, f2)
  std::vector<Complex> time_domain;                 ///< size n1 * n2
};

/// Generates a grid signal whose 2D DFT has exactly k unit-magnitude
/// coefficients at distinct random positions.
SparseSpectrum2dSignal MakeSparseSpectrum2dSignal(uint64_t n1, uint64_t n2,
                                                  uint64_t k, uint64_t seed);

/// Options for the 2D sparse FFT.
struct Sfft2dOptions {
  uint64_t sparsity = 8;
  int max_rounds = 8;
  double magnitude_tolerance = 1e-7;
  double singleton_tolerance = 0.05;
  uint64_t seed = 0x5eedULL;
};

/// Result of a 2D sparse FFT.
struct Sfft2dResult {
  std::vector<SpectralCoefficient2d> coefficients;
  uint64_t samples_read = 0;
  int rounds_used = 0;
  bool converged = false;
};

/// Sample-optimal average-case 2D sparse FFT in the style of [GHI+13]
/// (survey §4): the FFT of a single *row* r of the grid aliases the whole
/// 2D spectrum along the f1 axis — bucket f2 receives
/// (1/n1) * sum_{f1} xhat[f1,f2] e^{2 pi i f1 r / n1} — so rows act as
/// phase-encoded buckets over columns of the spectrum, and columns act as
/// buckets over rows. Singletons are located bitwise from rows
/// r = n1/2, n1/4, ..., validated at a random row, and peeled from both
/// views; later rounds shear the grid (x[t1, t2 + a*t1]) to re-randomize
/// collision patterns that row/column peeling alone cannot break.
///
/// Reads O((n1 + n2) log) samples per round — sub-linear in n = n1*n2.
/// Requires power-of-two n1, n2.
Sfft2dResult ExactSparseFft2d(const std::vector<Complex>& x, uint64_t n1,
                              uint64_t n2, const Sfft2dOptions& options);

/// Baseline: full 2D FFT (row FFTs then column FFTs), O(n log n).
std::vector<Complex> Dense2dFft(const std::vector<Complex>& x, uint64_t n1,
                                uint64_t n2);

/// Top-k selection from a dense 2D spectrum (baseline output format).
std::vector<SpectralCoefficient2d> TopK2dCoefficients(
    const std::vector<Complex>& spectrum, uint64_t n1, uint64_t n2,
    uint64_t k);

/// L2 error between a recovered coefficient list and the planted truth.
double Spectrum2dL2Error(const std::vector<SpectralCoefficient2d>& recovered,
                         const SparseSpectrum2dSignal& signal);

}  // namespace sketch

#endif  // SKETCH_SFFT_SFFT2D_H_
