#include "linalg/dense_matrix.h"

#include <cmath>

#include "common/prng.h"

namespace sketch {

std::vector<double> DenseMatrix::Multiply(const std::vector<double>& x) const {
  SKETCH_CHECK(x.size() == cols_);
  std::vector<double> y(rows_, 0.0);
  for (uint64_t r = 0; r < rows_; ++r) {
    const double* row = Row(r);
    double acc = 0.0;
    for (uint64_t c = 0; c < cols_; ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
  return y;
}

std::vector<double> DenseMatrix::MultiplyTranspose(
    const std::vector<double>& x) const {
  SKETCH_CHECK(x.size() == rows_);
  std::vector<double> y(cols_, 0.0);
  for (uint64_t r = 0; r < rows_; ++r) {
    const double* row = Row(r);
    const double xr = x[r];
    if (xr == 0.0) continue;
    for (uint64_t c = 0; c < cols_; ++c) y[c] += row[c] * xr;
  }
  return y;
}

void DenseMatrix::FillGaussian(uint64_t seed) {
  Xoshiro256StarStar rng(seed);
  const double scale = 1.0 / std::sqrt(static_cast<double>(rows_));
  for (auto& v : data_) v = rng.NextGaussian() * scale;
}

void DenseMatrix::FillRademacher(uint64_t seed) {
  Xoshiro256StarStar rng(seed);
  const double scale = 1.0 / std::sqrt(static_cast<double>(rows_));
  for (auto& v : data_) v = (rng.Next() & 1) ? scale : -scale;
}

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  SKETCH_CHECK(a.size() == b.size());
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

void Axpy(double alpha, const std::vector<double>& x, std::vector<double>* y) {
  SKETCH_CHECK(x.size() == y->size());
  for (size_t i = 0; i < x.size(); ++i) (*y)[i] += alpha * x[i];
}

}  // namespace sketch
