#ifndef SKETCH_LINALG_LEAST_SQUARES_H_
#define SKETCH_LINALG_LEAST_SQUARES_H_

#include <vector>

#include "linalg/dense_matrix.h"

namespace sketch {

/// Solves min_x ||A x - b||_2 for a dense A (rows >= cols, full column
/// rank) via Householder QR. O(rows * cols^2).
///
/// This is both the exact baseline for sketched regression (E8, [CW13])
/// and the inner solver of OMP's per-iteration projection step.
///
/// \returns the minimizer x of length A.cols().
std::vector<double> SolveLeastSquaresQr(const DenseMatrix& a,
                                        const std::vector<double>& b);

}  // namespace sketch

#endif  // SKETCH_LINALG_LEAST_SQUARES_H_
