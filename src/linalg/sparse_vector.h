#ifndef SKETCH_LINALG_SPARSE_VECTOR_H_
#define SKETCH_LINALG_SPARSE_VECTOR_H_

#include <cstdint>
#include <vector>

namespace sketch {

/// One nonzero entry of a sparse vector.
struct SparseEntry {
  uint64_t index = 0;
  double value = 0.0;
};

/// A sparse vector stored as an (index, value) list plus its ambient
/// dimension. Entries are kept sorted by index with no duplicates.
///
/// This is the natural representation of both k-sparse signals (§2) and
/// sparse feature vectors (§3): sparse dimensionality reduction's selling
/// point is that projection cost scales with `nnz()` rather than with
/// `dimension()`.
class SparseVector {
 public:
  SparseVector() = default;
  explicit SparseVector(uint64_t dimension) : dimension_(dimension) {}

  /// Builds from an entry list: sorts by index and merges duplicates
  /// (summing values); drops entries that sum to exactly zero.
  static SparseVector FromEntries(uint64_t dimension,
                                  std::vector<SparseEntry> entries);

  /// Builds from a dense vector, keeping entries with |v| > tolerance.
  static SparseVector FromDense(const std::vector<double>& dense,
                                double tolerance = 0.0);

  /// Densifies into a length-`dimension()` vector.
  std::vector<double> ToDense() const;

  uint64_t dimension() const { return dimension_; }
  uint64_t nnz() const { return entries_.size(); }
  const std::vector<SparseEntry>& entries() const { return entries_; }

 private:
  uint64_t dimension_ = 0;
  std::vector<SparseEntry> entries_;
};

}  // namespace sketch

#endif  // SKETCH_LINALG_SPARSE_VECTOR_H_
