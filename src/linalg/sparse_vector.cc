#include "linalg/sparse_vector.h"

#include <algorithm>

#include "common/check.h"

namespace sketch {

SparseVector SparseVector::FromEntries(uint64_t dimension,
                                       std::vector<SparseEntry> entries) {
  SparseVector v(dimension);
  std::sort(entries.begin(), entries.end(),
            [](const SparseEntry& a, const SparseEntry& b) {
              return a.index < b.index;
            });
  for (const SparseEntry& e : entries) {
    SKETCH_CHECK(e.index < dimension);
    if (!v.entries_.empty() && v.entries_.back().index == e.index) {
      v.entries_.back().value += e.value;
    } else {
      v.entries_.push_back(e);
    }
  }
  std::erase_if(v.entries_,
                [](const SparseEntry& e) { return e.value == 0.0; });
  return v;
}

SparseVector SparseVector::FromDense(const std::vector<double>& dense,
                                     double tolerance) {
  SparseVector v(dense.size());
  for (uint64_t i = 0; i < dense.size(); ++i) {
    if (std::abs(dense[i]) > tolerance) v.entries_.push_back({i, dense[i]});
  }
  return v;
}

std::vector<double> SparseVector::ToDense() const {
  std::vector<double> dense(dimension_, 0.0);
  for (const SparseEntry& e : entries_) dense[e.index] = e.value;
  return dense;
}

}  // namespace sketch
