#ifndef SKETCH_LINALG_CSR_MATRIX_H_
#define SKETCH_LINALG_CSR_MATRIX_H_

#include <cstdint>
#include <vector>

#include "linalg/sparse_vector.h"

namespace sketch {

/// A (row, col, value) coordinate triplet used to assemble sparse matrices.
struct Triplet {
  uint64_t row = 0;
  uint64_t col = 0;
  double value = 0.0;
};

/// Compressed-sparse-row matrix.
///
/// The survey's central observation is that a hashing process *is* a sparse
/// linear map c = Ax. This class is the concrete form of that map when the
/// matrix must be materialized (recovery algorithms such as SSMP walk
/// A both row-wise and column-wise). Multiplication costs O(nnz).
class CsrMatrix {
 public:
  /// Assembles from triplets; duplicate (row, col) pairs are summed.
  static CsrMatrix FromTriplets(uint64_t rows, uint64_t cols,
                                std::vector<Triplet> triplets);

  uint64_t rows() const { return rows_; }
  uint64_t cols() const { return cols_; }
  uint64_t nnz() const { return values_.size(); }

  /// y = A x for a dense x of length cols().
  std::vector<double> Multiply(const std::vector<double>& x) const;

  /// y = A x for a sparse x (cost O(nnz(x) * max row support of A^T)).
  std::vector<double> Multiply(const SparseVector& x) const;

  /// y = A^T x for a dense x of length rows().
  std::vector<double> MultiplyTranspose(const std::vector<double>& x) const;

  /// Row `r` as (column, value) pairs via CSR offsets.
  struct RowView {
    const uint64_t* cols;
    const double* values;
    uint64_t size;
  };
  RowView Row(uint64_t r) const;

  /// Builds the transpose (CSC access pattern, needed by column-driven
  /// recovery algorithms).
  CsrMatrix Transpose() const;

 private:
  uint64_t rows_ = 0;
  uint64_t cols_ = 0;
  std::vector<uint64_t> row_offsets_;  // size rows_+1
  std::vector<uint64_t> col_indices_;  // size nnz
  std::vector<double> values_;         // size nnz
};

}  // namespace sketch

#endif  // SKETCH_LINALG_CSR_MATRIX_H_
