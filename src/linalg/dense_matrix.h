#ifndef SKETCH_LINALG_DENSE_MATRIX_H_
#define SKETCH_LINALG_DENSE_MATRIX_H_

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace sketch {

/// Row-major dense matrix of doubles.
///
/// This is the substrate for the *dense* baselines the survey contrasts
/// hashing against: i.i.d. Gaussian/Bernoulli measurement matrices for
/// compressed sensing (§2) and dense Johnson–Lindenstrauss projections
/// (§3). Multiplication is deliberately the straightforward O(rows·cols)
/// loop — that cost is exactly the point of comparison with sparse
/// sketching matrices.
class DenseMatrix {
 public:
  /// Creates a rows x cols zero matrix.
  DenseMatrix(uint64_t rows, uint64_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  uint64_t rows() const { return rows_; }
  uint64_t cols() const { return cols_; }

  double& At(uint64_t r, uint64_t c) {
    SKETCH_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double At(uint64_t r, uint64_t c) const {
    SKETCH_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Pointer to the start of row `r` (contiguous, `cols()` entries).
  const double* Row(uint64_t r) const { return &data_[r * cols_]; }
  double* Row(uint64_t r) { return &data_[r * cols_]; }

  /// y = A x. `x.size()` must equal cols().
  std::vector<double> Multiply(const std::vector<double>& x) const;

  /// y = A^T x. `x.size()` must equal rows().
  std::vector<double> MultiplyTranspose(const std::vector<double>& x) const;

  /// Fills with i.i.d. N(0, 1/rows) entries — the classical compressed-
  /// sensing ensemble of [CRT06, Don06] (scaling keeps column norms ≈ 1).
  void FillGaussian(uint64_t seed);

  /// Fills with i.i.d. ±1/sqrt(rows) entries (Bernoulli/Rademacher
  /// ensemble).
  void FillRademacher(uint64_t seed);

 private:
  uint64_t rows_;
  uint64_t cols_;
  std::vector<double> data_;
};

/// Dot product of equal-length vectors.
double Dot(const std::vector<double>& a, const std::vector<double>& b);

/// y += alpha * x, in place. Vectors must have equal length.
void Axpy(double alpha, const std::vector<double>& x, std::vector<double>* y);

}  // namespace sketch

#endif  // SKETCH_LINALG_DENSE_MATRIX_H_
