#include "linalg/csr_matrix.h"

#include <algorithm>

#include "common/check.h"

namespace sketch {

CsrMatrix CsrMatrix::FromTriplets(uint64_t rows, uint64_t cols,
                                  std::vector<Triplet> triplets) {
  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  m.row_offsets_.assign(rows + 1, 0);
  for (size_t i = 0; i < triplets.size(); ++i) {
    const Triplet& t = triplets[i];
    SKETCH_CHECK(t.row < rows && t.col < cols);
    if (!m.col_indices_.empty() && i > 0 && triplets[i - 1].row == t.row &&
        triplets[i - 1].col == t.col) {
      m.values_.back() += t.value;
      continue;
    }
    m.col_indices_.push_back(t.col);
    m.values_.push_back(t.value);
    ++m.row_offsets_[t.row + 1];
  }
  for (uint64_t r = 0; r < rows; ++r) {
    m.row_offsets_[r + 1] += m.row_offsets_[r];
  }
  return m;
}

std::vector<double> CsrMatrix::Multiply(const std::vector<double>& x) const {
  SKETCH_CHECK(x.size() == cols_);
  std::vector<double> y(rows_, 0.0);
  for (uint64_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (uint64_t i = row_offsets_[r]; i < row_offsets_[r + 1]; ++i) {
      acc += values_[i] * x[col_indices_[i]];
    }
    y[r] = acc;
  }
  return y;
}

std::vector<double> CsrMatrix::Multiply(const SparseVector& x) const {
  SKETCH_CHECK(x.dimension() == cols_);
  // Column-driven product through the transpose would be ideal; for
  // simplicity and because sketching matrices have O(1) entries per
  // column, go through the transpose lazily only when beneficial.
  // Here: accumulate y += x_j * A[:, j] by scanning rows once.
  // For CSR this is O(nnz(A)); callers with very sparse x should use the
  // transpose directly.
  std::vector<double> dense = x.ToDense();
  return Multiply(dense);
}

std::vector<double> CsrMatrix::MultiplyTranspose(
    const std::vector<double>& x) const {
  SKETCH_CHECK(x.size() == rows_);
  std::vector<double> y(cols_, 0.0);
  for (uint64_t r = 0; r < rows_; ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    for (uint64_t i = row_offsets_[r]; i < row_offsets_[r + 1]; ++i) {
      y[col_indices_[i]] += values_[i] * xr;
    }
  }
  return y;
}

CsrMatrix::RowView CsrMatrix::Row(uint64_t r) const {
  SKETCH_CHECK(r < rows_);
  const uint64_t begin = row_offsets_[r];
  return RowView{col_indices_.data() + begin, values_.data() + begin,
                 row_offsets_[r + 1] - begin};
}

CsrMatrix CsrMatrix::Transpose() const {
  std::vector<Triplet> triplets;
  triplets.reserve(nnz());
  for (uint64_t r = 0; r < rows_; ++r) {
    for (uint64_t i = row_offsets_[r]; i < row_offsets_[r + 1]; ++i) {
      triplets.push_back({col_indices_[i], r, values_[i]});
    }
  }
  return FromTriplets(cols_, rows_, std::move(triplets));
}

}  // namespace sketch
