#include "linalg/symmetric_eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"

namespace sketch {

SymmetricEigen JacobiEigenDecomposition(const DenseMatrix& a, int max_sweeps,
                                        double tolerance) {
  const uint64_t n = a.rows();
  SKETCH_CHECK(a.cols() == n);
  DenseMatrix work = a;
  // Symmetrize defensively (callers often build A = B B^T in floating
  // point, leaving ~1e-16 asymmetry).
  for (uint64_t i = 0; i < n; ++i) {
    for (uint64_t j = i + 1; j < n; ++j) {
      const double avg = 0.5 * (work.At(i, j) + work.At(j, i));
      work.At(i, j) = avg;
      work.At(j, i) = avg;
    }
  }
  DenseMatrix v(n, n);
  for (uint64_t i = 0; i < n; ++i) v.At(i, i) = 1.0;

  double scale = 0.0;
  for (uint64_t i = 0; i < n; ++i) {
    for (uint64_t j = 0; j < n; ++j) {
      scale = std::max(scale, std::abs(work.At(i, j)));
    }
  }
  if (scale == 0.0) scale = 1.0;

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (uint64_t p = 0; p < n; ++p) {
      for (uint64_t q = p + 1; q < n; ++q) {
        off = std::max(off, std::abs(work.At(p, q)));
      }
    }
    if (off <= tolerance * scale) break;

    for (uint64_t p = 0; p < n; ++p) {
      for (uint64_t q = p + 1; q < n; ++q) {
        const double apq = work.At(p, q);
        if (std::abs(apq) <= tolerance * scale * 1e-3) continue;
        const double app = work.At(p, p);
        const double aqq = work.At(q, q);
        // Jacobi rotation angle.
        const double theta = 0.5 * (aqq - app) / apq;
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::abs(theta) +
                          std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        // Update rows/columns p and q of `work`.
        for (uint64_t i = 0; i < n; ++i) {
          const double aip = work.At(i, p);
          const double aiq = work.At(i, q);
          work.At(i, p) = c * aip - s * aiq;
          work.At(i, q) = s * aip + c * aiq;
        }
        for (uint64_t i = 0; i < n; ++i) {
          const double api = work.At(p, i);
          const double aqi = work.At(q, i);
          work.At(p, i) = c * api - s * aqi;
          work.At(q, i) = s * api + c * aqi;
        }
        // Accumulate the rotation into the eigenvector matrix.
        for (uint64_t i = 0; i < n; ++i) {
          const double vip = v.At(i, p);
          const double viq = v.At(i, q);
          v.At(i, p) = c * vip - s * viq;
          v.At(i, q) = s * vip + c * viq;
        }
      }
    }
  }

  // Sort by descending eigenvalue.
  std::vector<uint64_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](uint64_t x, uint64_t y) {
    return work.At(x, x) > work.At(y, y);
  });

  SymmetricEigen result;
  result.values.resize(n);
  result.vectors = DenseMatrix(n, n);
  for (uint64_t j = 0; j < n; ++j) {
    result.values[j] = work.At(order[j], order[j]);
    for (uint64_t i = 0; i < n; ++i) {
      result.vectors.At(i, j) = v.At(i, order[j]);
    }
  }
  return result;
}

}  // namespace sketch
