#ifndef SKETCH_LINALG_SYMMETRIC_EIGEN_H_
#define SKETCH_LINALG_SYMMETRIC_EIGEN_H_

#include <vector>

#include "linalg/dense_matrix.h"

namespace sketch {

/// Eigendecomposition of a small symmetric matrix.
struct SymmetricEigen {
  /// Eigenvalues in descending order.
  std::vector<double> values;
  /// Column j of `vectors` is the eigenvector of values[j].
  DenseMatrix vectors;
  SymmetricEigen() : vectors(1, 1) {}
};

/// Cyclic Jacobi eigendecomposition for symmetric matrices. O(n^3) per
/// sweep with quadratic convergence — intended for the small (rank +
/// oversampling)-sized matrices that randomized low-rank algorithms
/// reduce to, not for large dense problems.
///
/// \param a  symmetric matrix (only the upper triangle is trusted).
SymmetricEigen JacobiEigenDecomposition(const DenseMatrix& a,
                                        int max_sweeps = 30,
                                        double tolerance = 1e-12);

}  // namespace sketch

#endif  // SKETCH_LINALG_SYMMETRIC_EIGEN_H_
