#include "linalg/least_squares.h"

#include <cmath>

#include "common/check.h"

namespace sketch {

std::vector<double> SolveLeastSquaresQr(const DenseMatrix& a,
                                        const std::vector<double>& b) {
  const uint64_t m = a.rows();
  const uint64_t n = a.cols();
  SKETCH_CHECK(m >= n);
  SKETCH_CHECK(b.size() == m);

  // Work on copies: R is built in place in `r`, and `qtb` accumulates Q^T b.
  DenseMatrix r = a;
  std::vector<double> qtb = b;

  for (uint64_t k = 0; k < n; ++k) {
    // Householder vector for column k, rows k..m-1.
    double norm = 0.0;
    for (uint64_t i = k; i < m; ++i) norm += r.At(i, k) * r.At(i, k);
    norm = std::sqrt(norm);
    if (norm == 0.0) continue;  // column already zero below the diagonal
    const double alpha = (r.At(k, k) > 0) ? -norm : norm;
    std::vector<double> v(m - k);
    v[0] = r.At(k, k) - alpha;
    for (uint64_t i = k + 1; i < m; ++i) v[i - k] = r.At(i, k);
    double vnorm2 = 0.0;
    for (double x : v) vnorm2 += x * x;
    if (vnorm2 == 0.0) continue;

    // Apply H = I - 2 v v^T / (v^T v) to the trailing columns of r.
    for (uint64_t c = k; c < n; ++c) {
      double dot = 0.0;
      for (uint64_t i = k; i < m; ++i) dot += v[i - k] * r.At(i, c);
      const double scale = 2.0 * dot / vnorm2;
      for (uint64_t i = k; i < m; ++i) r.At(i, c) -= scale * v[i - k];
    }
    // Apply H to qtb.
    double dot = 0.0;
    for (uint64_t i = k; i < m; ++i) dot += v[i - k] * qtb[i];
    const double scale = 2.0 * dot / vnorm2;
    for (uint64_t i = k; i < m; ++i) qtb[i] -= scale * v[i - k];
  }

  // Back-substitute R x = (Q^T b)[0..n).
  std::vector<double> x(n, 0.0);
  for (uint64_t k = n; k-- > 0;) {
    double acc = qtb[k];
    for (uint64_t c = k + 1; c < n; ++c) acc -= r.At(k, c) * x[c];
    const double diag = r.At(k, k);
    SKETCH_CHECK_MSG(std::abs(diag) > 1e-12, "matrix is rank deficient");
    x[k] = acc / diag;
  }
  return x;
}

}  // namespace sketch
