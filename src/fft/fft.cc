#include "fft/fft.h"

#include <cmath>
#include <cstddef>
#include <map>
#include <numbers>
#include <utility>

#include "common/check.h"

namespace sketch {

namespace {

constexpr double kPi = std::numbers::pi;

/// Smallest power of two >= n.
uint64_t NextPowerOfTwo(uint64_t n) {
  uint64_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// Caps on the per-thread trig-table caches below. Each distinct size costs
/// O(n) Complex values, so a runaway sweep over many sizes is bounded by
/// clearing the cache once it holds this many tables (the hot sizes are
/// immediately re-derived and re-cached).
constexpr std::size_t kMaxCachedTables = 16;

/// Forward-direction twiddle table for a power-of-two size n:
/// w[j] = exp(-2*pi*i*j/n) for j < n/2. The butterfly reads the stage-len
/// twiddle as w[j * (n/len)]; the inverse transform conjugates on read.
/// Cached per thread so repeated transforms of the same size (the sFFT
/// inner loops, Bluestein's fixed-size convolutions) stop paying
/// O(n log n) std::cos/std::sin calls per invocation. Thread-local storage
/// keeps the cache lock-free.
const std::vector<Complex>& TwiddlesFor(uint64_t n) {
  thread_local std::map<uint64_t, std::vector<Complex>> cache;
  auto it = cache.find(n);
  if (it != cache.end()) return it->second;
  if (cache.size() >= kMaxCachedTables) cache.clear();
  std::vector<Complex> w(n / 2);
  for (uint64_t j = 0; j < n / 2; ++j) {
    const double angle =
        -2.0 * kPi * static_cast<double>(j) / static_cast<double>(n);
    w[j] = Complex(std::cos(angle), std::sin(angle));
  }
  return cache.emplace(n, std::move(w)).first->second;
}

/// Precomputed Bluestein state for one (n, direction) pair: the chirp
/// sequence and the forward FFT of the padded conjugate-chirp kernel (the
/// convolution's second operand, which does not depend on the input).
struct BluesteinTables {
  uint64_t m = 0;                // convolution length (power of two)
  std::vector<Complex> chirp;    // exp(sign * i * pi * j^2 / n), j < n
  std::vector<Complex> b_fft;    // FFT of the padded conj(chirp) kernel
};

const BluesteinTables& BluesteinTablesFor(uint64_t n, bool inverse) {
  thread_local std::map<std::pair<uint64_t, bool>, BluesteinTables> cache;
  const std::pair<uint64_t, bool> key(n, inverse);
  auto it = cache.find(key);
  if (it != cache.end()) return it->second;
  if (cache.size() >= kMaxCachedTables) cache.clear();

  BluesteinTables t;
  const double sign = inverse ? 1.0 : -1.0;
  // Chirp c[j] = exp(sign * i * pi * j^2 / n). j^2 mod 2n keeps the angle
  // argument bounded for large n (exp is 2*pi periodic; j^2/n * pi has
  // period 2n in j^2).
  t.chirp.resize(n);
  for (uint64_t j = 0; j < n; ++j) {
    const uint64_t j2 = static_cast<uint64_t>(
        (static_cast<__uint128_t>(j) * j) % (2 * n));
    const double angle = sign * kPi * static_cast<double>(j2) /
                         static_cast<double>(n);
    t.chirp[j] = Complex(std::cos(angle), std::sin(angle));
  }
  t.m = NextPowerOfTwo(2 * n - 1);
  t.b_fft.assign(t.m, Complex(0, 0));
  t.b_fft[0] = std::conj(t.chirp[0]);
  for (uint64_t j = 1; j < n; ++j) {
    t.b_fft[j] = t.b_fft[t.m - j] = std::conj(t.chirp[j]);
  }
  FftPow2InPlace(&t.b_fft, /*inverse=*/false);
  return cache.emplace(key, std::move(t)).first->second;
}

/// Bluestein's chirp-z transform: expresses an arbitrary-length DFT as a
/// convolution, evaluated with power-of-two FFTs of length >= 2n-1. The
/// input-independent half of the convolution comes from the per-size cache.
std::vector<Complex> BluesteinDft(const std::vector<Complex>& x,
                                  bool inverse) {
  const uint64_t n = x.size();
  const BluesteinTables& t = BluesteinTablesFor(n, inverse);
  std::vector<Complex> a(t.m, Complex(0, 0));
  for (uint64_t j = 0; j < n; ++j) a[j] = x[j] * t.chirp[j];
  FftPow2InPlace(&a, /*inverse=*/false);
  for (uint64_t j = 0; j < t.m; ++j) a[j] *= t.b_fft[j];
  FftPow2InPlace(&a, /*inverse=*/true);
  std::vector<Complex> result(n);
  for (uint64_t j = 0; j < n; ++j) result[j] = a[j] * t.chirp[j];
  return result;
}

}  // namespace

void FftPow2InPlace(std::vector<Complex>* x, bool inverse) {
  std::vector<Complex>& a = *x;
  const uint64_t n = a.size();
  SKETCH_CHECK(IsPowerOfTwo(n));
  if (n == 1) return;

  // Bit-reversal permutation.
  for (uint64_t i = 1, j = 0; i < n; ++i) {
    uint64_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }

  // Twiddles come from the cached per-size table (exact table lookup also
  // avoids the rounding drift of the classic incremental w *= wlen chain);
  // the inverse transform conjugates on read.
  const std::vector<Complex>& tw = TwiddlesFor(n);
  const double conj_sign = inverse ? -1.0 : 1.0;
  for (uint64_t len = 2; len <= n; len <<= 1) {
    const uint64_t stride = n / len;
    for (uint64_t i = 0; i < n; i += len) {
      for (uint64_t j = 0; j < len / 2; ++j) {
        const Complex& wj = tw[j * stride];
        const Complex w(wj.real(), conj_sign * wj.imag());
        const Complex u = a[i + j];
        const Complex v = a[i + j + len / 2] * w;
        a[i + j] = u + v;
        a[i + j + len / 2] = u - v;
      }
    }
  }
  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n);
    for (auto& v : a) v *= inv_n;
  }
}

std::vector<Complex> Fft(const std::vector<Complex>& x) {
  SKETCH_CHECK(!x.empty());
  if (IsPowerOfTwo(x.size())) {
    std::vector<Complex> a = x;
    FftPow2InPlace(&a, /*inverse=*/false);
    return a;
  }
  return BluesteinDft(x, /*inverse=*/false);
}

std::vector<Complex> InverseFft(const std::vector<Complex>& x) {
  SKETCH_CHECK(!x.empty());
  if (IsPowerOfTwo(x.size())) {
    std::vector<Complex> a = x;
    FftPow2InPlace(&a, /*inverse=*/true);
    return a;
  }
  std::vector<Complex> a = BluesteinDft(x, /*inverse=*/true);
  const double inv_n = 1.0 / static_cast<double>(x.size());
  for (auto& v : a) v *= inv_n;
  return a;
}

std::vector<Complex> NaiveDft(const std::vector<Complex>& x) {
  const uint64_t n = x.size();
  std::vector<Complex> out(n, Complex(0, 0));
  for (uint64_t f = 0; f < n; ++f) {
    Complex acc(0, 0);
    for (uint64_t t = 0; t < n; ++t) {
      const double angle = -2.0 * kPi * static_cast<double>((f * t) % n) /
                           static_cast<double>(n);
      acc += x[t] * Complex(std::cos(angle), std::sin(angle));
    }
    out[f] = acc;
  }
  return out;
}

}  // namespace sketch
