#include "fft/fft.h"

#include <cmath>
#include <numbers>

#include "common/check.h"

namespace sketch {

namespace {

constexpr double kPi = std::numbers::pi;

/// Smallest power of two >= n.
uint64_t NextPowerOfTwo(uint64_t n) {
  uint64_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// Bluestein's chirp-z transform: expresses an arbitrary-length DFT as a
/// convolution, evaluated with power-of-two FFTs of length >= 2n-1.
std::vector<Complex> BluesteinDft(const std::vector<Complex>& x,
                                  bool inverse) {
  const uint64_t n = x.size();
  const double sign = inverse ? 1.0 : -1.0;
  // Chirp c[j] = exp(sign * i * pi * j^2 / n). j^2 mod 2n keeps the angle
  // argument bounded for large n (exp is 2*pi periodic; j^2/n * pi has
  // period 2n in j^2).
  std::vector<Complex> chirp(n);
  for (uint64_t j = 0; j < n; ++j) {
    const uint64_t j2 = static_cast<uint64_t>(
        (static_cast<__uint128_t>(j) * j) % (2 * n));
    const double angle = sign * kPi * static_cast<double>(j2) /
                         static_cast<double>(n);
    chirp[j] = Complex(std::cos(angle), std::sin(angle));
  }
  const uint64_t m = NextPowerOfTwo(2 * n - 1);
  std::vector<Complex> a(m, Complex(0, 0));
  std::vector<Complex> b(m, Complex(0, 0));
  for (uint64_t j = 0; j < n; ++j) a[j] = x[j] * chirp[j];
  b[0] = std::conj(chirp[0]);
  for (uint64_t j = 1; j < n; ++j) {
    b[j] = b[m - j] = std::conj(chirp[j]);
  }
  FftPow2InPlace(&a, /*inverse=*/false);
  FftPow2InPlace(&b, /*inverse=*/false);
  for (uint64_t j = 0; j < m; ++j) a[j] *= b[j];
  FftPow2InPlace(&a, /*inverse=*/true);
  std::vector<Complex> result(n);
  for (uint64_t j = 0; j < n; ++j) result[j] = a[j] * chirp[j];
  return result;
}

}  // namespace

void FftPow2InPlace(std::vector<Complex>* x, bool inverse) {
  std::vector<Complex>& a = *x;
  const uint64_t n = a.size();
  SKETCH_CHECK(IsPowerOfTwo(n));
  if (n == 1) return;

  // Bit-reversal permutation.
  for (uint64_t i = 1, j = 0; i < n; ++i) {
    uint64_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }

  const double sign = inverse ? 1.0 : -1.0;
  for (uint64_t len = 2; len <= n; len <<= 1) {
    const double angle = sign * 2.0 * kPi / static_cast<double>(len);
    const Complex wlen(std::cos(angle), std::sin(angle));
    for (uint64_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (uint64_t j = 0; j < len / 2; ++j) {
        const Complex u = a[i + j];
        const Complex v = a[i + j + len / 2] * w;
        a[i + j] = u + v;
        a[i + j + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n);
    for (auto& v : a) v *= inv_n;
  }
}

std::vector<Complex> Fft(const std::vector<Complex>& x) {
  SKETCH_CHECK(!x.empty());
  if (IsPowerOfTwo(x.size())) {
    std::vector<Complex> a = x;
    FftPow2InPlace(&a, /*inverse=*/false);
    return a;
  }
  return BluesteinDft(x, /*inverse=*/false);
}

std::vector<Complex> InverseFft(const std::vector<Complex>& x) {
  SKETCH_CHECK(!x.empty());
  if (IsPowerOfTwo(x.size())) {
    std::vector<Complex> a = x;
    FftPow2InPlace(&a, /*inverse=*/true);
    return a;
  }
  std::vector<Complex> a = BluesteinDft(x, /*inverse=*/true);
  const double inv_n = 1.0 / static_cast<double>(x.size());
  for (auto& v : a) v *= inv_n;
  return a;
}

std::vector<Complex> NaiveDft(const std::vector<Complex>& x) {
  const uint64_t n = x.size();
  std::vector<Complex> out(n, Complex(0, 0));
  for (uint64_t f = 0; f < n; ++f) {
    Complex acc(0, 0);
    for (uint64_t t = 0; t < n; ++t) {
      const double angle = -2.0 * kPi * static_cast<double>((f * t) % n) /
                           static_cast<double>(n);
      acc += x[t] * Complex(std::cos(angle), std::sin(angle));
    }
    out[f] = acc;
  }
  return out;
}

}  // namespace sketch
