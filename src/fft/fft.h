#ifndef SKETCH_FFT_FFT_H_
#define SKETCH_FFT_FFT_H_

#include <complex>
#include <cstdint>
#include <vector>

/// \file
/// Discrete Fourier transforms, built from scratch as the substrate and
/// the baseline for the sparse Fourier transform (§4 of the survey).
///
/// Conventions: the forward transform is
///   xhat[f] = sum_t x[t] * exp(-2*pi*i*f*t/n),
/// and the inverse divides by n, so Inverse(Forward(x)) == x.
///
/// Power-of-two sizes use an in-place iterative radix-2 Cooley–Tukey;
/// arbitrary sizes fall back to Bluestein's chirp-z algorithm (itself built
/// on the radix-2 kernel), so every size runs in O(n log n).

namespace sketch {

using Complex = std::complex<double>;

/// Returns true iff `n` is a power of two (n >= 1).
constexpr bool IsPowerOfTwo(uint64_t n) { return n != 0 && (n & (n - 1)) == 0; }

/// Forward DFT of `x` (any length >= 1). O(n log n).
std::vector<Complex> Fft(const std::vector<Complex>& x);

/// Inverse DFT of `x` (any length >= 1), normalized by 1/n. O(n log n).
std::vector<Complex> InverseFft(const std::vector<Complex>& x);

/// In-place forward/inverse transform for power-of-two sizes only.
/// When `inverse` is true the result is scaled by 1/n.
void FftPow2InPlace(std::vector<Complex>* x, bool inverse);

/// Naive O(n^2) DFT; the correctness oracle for tests.
std::vector<Complex> NaiveDft(const std::vector<Complex>& x);

}  // namespace sketch

#endif  // SKETCH_FFT_FFT_H_
