#ifndef SKETCH_FFT_REAL_FFT_H_
#define SKETCH_FFT_REAL_FFT_H_

#include <cstdint>
#include <vector>

#include "fft/fft.h"

namespace sketch {

/// Forward DFT of a real signal, exploiting conjugate symmetry: an
/// even-length real FFT runs as one complex FFT of half the size (pack
/// even samples into the real part, odd into the imaginary part, then
/// untangle). Returns only the non-redundant half-spectrum,
/// xhat[0 .. n/2] (n/2 + 1 bins); the rest follows from
/// xhat[n-f] = conj(xhat[f]).
///
/// Requires even n (power-of-two sizes hit the fast path throughout).
std::vector<Complex> RealFft(const std::vector<double>& x);

/// Inverse of RealFft: reconstructs the length-n real signal from its
/// n/2 + 1 half-spectrum bins.
std::vector<double> InverseRealFft(const std::vector<Complex>& half_spectrum,
                                   uint64_t n);

/// Circular convolution of two equal-length real vectors via the
/// convolution theorem. O(n log n); the workhorse behind Bluestein and a
/// common consumer of the FFT substrate in its own right.
std::vector<double> CircularConvolve(const std::vector<double>& a,
                                     const std::vector<double>& b);

}  // namespace sketch

#endif  // SKETCH_FFT_REAL_FFT_H_
