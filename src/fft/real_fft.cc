#include "fft/real_fft.h"

#include <cmath>
#include <numbers>

#include "common/check.h"

namespace sketch {

std::vector<Complex> RealFft(const std::vector<double>& x) {
  const uint64_t n = x.size();
  SKETCH_CHECK(n >= 2 && n % 2 == 0);
  const uint64_t m = n / 2;

  // Pack even samples into the real part, odd into the imaginary part.
  std::vector<Complex> z(m);
  for (uint64_t j = 0; j < m; ++j) {
    z[j] = Complex(x[2 * j], x[2 * j + 1]);
  }
  const std::vector<Complex> big_z = Fft(z);

  // Untangle: with E/O the spectra of the even/odd subsequences,
  //   E[f] = (Z[f] + conj(Z[m-f])) / 2,
  //   O[f] = (Z[f] - conj(Z[m-f])) / (2i),
  //   X[f] = E[f] + e^{-2 pi i f / n} O[f],  f = 0..m.
  std::vector<Complex> out(m + 1);
  for (uint64_t f = 0; f <= m; ++f) {
    const Complex zf = big_z[f % m];
    const Complex zc = std::conj(big_z[(m - f) % m]);
    const Complex even = 0.5 * (zf + zc);
    const Complex odd = Complex(0.0, -0.5) * (zf - zc);
    const double angle = -2.0 * std::numbers::pi * static_cast<double>(f) /
                         static_cast<double>(n);
    out[f] = even + Complex(std::cos(angle), std::sin(angle)) * odd;
  }
  return out;
}

std::vector<double> InverseRealFft(const std::vector<Complex>& half_spectrum,
                                   uint64_t n) {
  SKETCH_CHECK(n >= 2 && n % 2 == 0);
  SKETCH_CHECK(half_spectrum.size() == n / 2 + 1);
  // Expand to the full conjugate-symmetric spectrum and run the complex
  // inverse (simple and robust; the forward path is the hot one).
  std::vector<Complex> full(n);
  for (uint64_t f = 0; f <= n / 2; ++f) full[f] = half_spectrum[f];
  for (uint64_t f = n / 2 + 1; f < n; ++f) {
    full[f] = std::conj(half_spectrum[n - f]);
  }
  const std::vector<Complex> time = InverseFft(full);
  std::vector<double> out(n);
  for (uint64_t t = 0; t < n; ++t) out[t] = time[t].real();
  return out;
}

std::vector<double> CircularConvolve(const std::vector<double>& a,
                                     const std::vector<double>& b) {
  SKETCH_CHECK(a.size() == b.size());
  SKETCH_CHECK(!a.empty());
  const uint64_t n = a.size();
  if (n % 2 == 0) {
    // Real-FFT path: half the transform work.
    const std::vector<Complex> fa = RealFft(a);
    const std::vector<Complex> fb = RealFft(b);
    std::vector<Complex> product(fa.size());
    for (size_t f = 0; f < fa.size(); ++f) product[f] = fa[f] * fb[f];
    return InverseRealFft(product, n);
  }
  // Odd length: complex fallback.
  std::vector<Complex> ca(n), cb(n);
  for (uint64_t t = 0; t < n; ++t) {
    ca[t] = Complex(a[t], 0.0);
    cb[t] = Complex(b[t], 0.0);
  }
  const std::vector<Complex> fa = Fft(ca);
  const std::vector<Complex> fb = Fft(cb);
  std::vector<Complex> product(n);
  for (uint64_t f = 0; f < n; ++f) product[f] = fa[f] * fb[f];
  const std::vector<Complex> time = InverseFft(product);
  std::vector<double> out(n);
  for (uint64_t t = 0; t < n; ++t) out[t] = time[t].real();
  return out;
}

}  // namespace sketch
