#ifndef SKETCH_PARALLEL_SHARDED_SKETCH_H_
#define SKETCH_PARALLEL_SHARDED_SKETCH_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/thread_pool.h"
#include "stream/update.h"
#include "telemetry/stats.h"
#include "telemetry/telemetry.h"

namespace sketch {

/// Parallel sharded ingestion engine.
///
/// `ShardedSketch<S>` holds P replicas of a sketch S, all constructed from
/// the same prototype (identical geometry and seed, hence identical hash
/// functions). `Ingest` splits an update block into P contiguous
/// sub-blocks and applies each on its own worker thread via
/// `S::ApplyBatch`; `Collapse` tree-merges the replicas into a single
/// query-able sketch.
///
/// Why this is *exact*, not approximate: the sketches are linear maps of
/// the frequency vector (the survey's central observation), so
///
///   sketch(stream A ++ stream B) == Merge(sketch(A), sketch(B))
///
/// counter-for-counter, whenever both sides share geometry and seed. The
/// engine therefore partitions purely by position — no per-item routing,
/// no locks on the hot path, no approximation introduced by sharding. The
/// merge-linearity property tests (`tests/sketch/merge_linearity_test.cc`)
/// pin this bit-identity down for every mergeable sketch, and the
/// sharded-vs-sequential test does the same through this engine.
///
/// Requirements on S: copy-constructible, `void ApplyBatch(UpdateSpan)`,
/// and `void Merge(const S&)` that CHECK-fails on geometry/seed mismatch.
/// CountMinSketch, CountSketch, AmsSketch, BloomFilter, and
/// DyadicCountMin all qualify.
///
/// Thread safety: each replica is touched by exactly one worker per
/// `Ingest` call, and calls into this class must be externally serialized
/// (one ingestion driver thread). The parallelism is *inside* a call, not
/// across calls — the same discipline a per-core sharded network pipeline
/// uses. Because safety comes from confinement rather than a lock, there
/// is nothing here for the clang thread-safety analysis
/// (`common/thread_annotations.h`) to annotate: the cross-thread
/// handoff is the ThreadPool's annotated queue plus its Wait() barrier,
/// which orders every worker's replica writes before Collapse reads them.
template <typename S>
class ShardedSketch {
 public:
  /// Creates `num_shards` replicas of `prototype`. The prototype is
  /// normally freshly constructed (empty); a non-empty prototype's counts
  /// would be multiplied by the shard count after Collapse, so pass an
  /// empty sketch. `pool` must outlive this object; pass nullptr to run
  /// every batch inline on the calling thread (useful as a sequential
  /// control).
  ShardedSketch(const S& prototype, std::size_t num_shards, ThreadPool* pool)
      : pool_(pool), shards_(num_shards, prototype) {
    SKETCH_CHECK(num_shards >= 1);
  }

  /// Convenience: one shard per pool worker.
  ShardedSketch(const S& prototype, ThreadPool* pool)
      : ShardedSketch(prototype, pool == nullptr ? 1 : pool->num_threads(),
                      pool) {}

  /// Partitions `updates` into contiguous, near-equal blocks — one per
  /// shard — and applies each block to its replica on a pool worker.
  /// Blocks until the whole batch is absorbed. Safe to call repeatedly;
  /// batches accumulate (the sketches are linear).
  void Ingest(UpdateSpan updates) {
    SKETCH_TRACE_SPAN("sharded.ingest");
    SKETCH_COUNTER_ADD("parallel.sharded.ingested_updates", updates.size());
    const std::size_t p = shards_.size();
    if (updates.empty()) return;
    if (p == 1 || pool_ == nullptr) {
      shards_[0].ApplyBatch(updates);
      return;
    }
    const std::size_t chunk = updates.size() / p;
    const std::size_t remainder = updates.size() % p;
    std::size_t offset = 0;
    // One task per shard; shard s owns its replica for the whole call, so
    // workers share no mutable state and the hot path takes no locks.
    for (std::size_t s = 0; s < p; ++s) {
      const std::size_t len = chunk + (s < remainder ? 1 : 0);
      const UpdateSpan block = updates.subspan(offset, len);
      S* replica = &shards_[s];
      pool_->Submit([replica, block] { replica->ApplyBatch(block); });
      offset += len;
    }
    pool_->Wait();
  }

  /// Reduces the replicas into one sketch of the full stream by pairwise
  /// tree merge (log2(P) rounds, each round's merges running in parallel
  /// on the pool). Non-destructive: replicas keep their contents, so
  /// ingestion can continue and Collapse can be called again later.
  S Collapse() const {
    SKETCH_TRACE_SPAN("sharded.collapse");
    SKETCH_COUNTER_INC("parallel.sharded.collapses");
    std::vector<S> work(shards_);
    for (std::size_t stride = 1; stride < work.size(); stride *= 2) {
      const std::size_t step = 2 * stride;
      if (pool_ == nullptr) {
        for (std::size_t i = 0; i + stride < work.size(); i += step) {
          work[i].Merge(work[i + stride]);
        }
      } else {
        for (std::size_t i = 0; i + stride < work.size(); i += step) {
          S* dst = &work[i];
          const S* src = &work[i + stride];
          pool_->Submit([dst, src] { dst->Merge(*src); });
        }
        pool_->Wait();
      }
    }
    return std::move(work[0]);
  }

  std::size_t num_shards() const { return shards_.size(); }

  /// Direct access to a replica (tests; e.g. asserting that work actually
  /// spread across shards).
  const S& shard(std::size_t i) const { return shards_[i]; }

  /// Resident memory: the object plus every replica's footprint (requires
  /// S::MemoryFootprintBytes).
  uint64_t MemoryFootprintBytes() const {
    uint64_t bytes = sizeof(*this) +
                     (shards_.capacity() - shards_.size()) * sizeof(S);
    for (const S& s : shards_) bytes += s.MemoryFootprintBytes();
    return bytes;
  }

  /// Structured self-description; each replica's snapshot appears as a
  /// child (requires S::Introspect).
  StatsSnapshot Introspect() const {
    StatsSnapshot snapshot;
    snapshot.type = "ShardedSketch";
    snapshot.memory_bytes = MemoryFootprintBytes();
    snapshot.AddField("num_shards", static_cast<double>(shards_.size()));
    snapshot.AddField("pooled", pool_ == nullptr ? 0.0 : 1.0);
    snapshot.children.reserve(shards_.size());
    for (const S& s : shards_) {
      snapshot.children.push_back(s.Introspect());
      snapshot.cells += snapshot.children.back().cells;
    }
    return snapshot;
  }

  /// Human-readable Introspect() dump.
  std::string DebugString() const { return Introspect().DebugString(); }

 private:
  ThreadPool* pool_;       // not owned; may be nullptr (inline execution)
  std::vector<S> shards_;  // replica s is written only by the worker
                           // running shard s's block of the current batch
};

}  // namespace sketch

#endif  // SKETCH_PARALLEL_SHARDED_SKETCH_H_
