#include "sketch/dyadic_count_min.h"

#include <algorithm>
#include <cstddef>

#include "common/byte_buffer.h"
#include "common/check.h"
#include "common/prng.h"
#include "telemetry/telemetry.h"

namespace sketch {

namespace {
constexpr uint64_t kDyadicMagic = 0x534b4459434d3031ULL;  // "SKDYCM01"
}  // namespace

DyadicCountMin::DyadicCountMin(int log_universe, uint64_t width,
                               uint64_t depth, uint64_t seed)
    : log_universe_(log_universe) {
  SKETCH_CHECK(log_universe >= 1 && log_universe <= 40);
  levels_.reserve(log_universe);
  for (int l = 1; l <= log_universe; ++l) {
    levels_.emplace_back(width, depth, SplitMix64Once(seed + 1000 * l));
  }
}

void DyadicCountMin::Update(const StreamUpdate& update) {
  SKETCH_DCHECK(update.item < (1ULL << log_universe_));
  total_ += update.delta;
  for (int l = 1; l <= log_universe_; ++l) {
    const uint64_t prefix = update.item >> (log_universe_ - l);
    levels_[l - 1].Update({prefix, update.delta});
  }
}

void DyadicCountMin::UpdateAll(const std::vector<StreamUpdate>& updates) {
  ApplyBatch(updates);
}

void DyadicCountMin::ApplyBatch(UpdateSpan updates) {
  // Level-major traversal: per block of updates, build each level's prefix
  // block once and hand it to that level's kernelized CountMin ApplyBatch.
  // This keeps one level's hash coefficients and counter rows hot instead
  // of cycling through all `log_universe_` levels per item. Bit-identical
  // to per-item Update() because counter addition commutes.
  SKETCH_TRACE_SPAN("dyadic.apply_batch");
  SKETCH_COUNTER_ADD("sketch.dyadic.batched_updates", updates.size());
  constexpr std::size_t kBlock = 256;
  StreamUpdate prefixes[kBlock];
  const std::size_t total = updates.size();
  for (std::size_t start = 0; start < total; start += kBlock) {
    const std::size_t n = std::min(kBlock, total - start);
    const StreamUpdate* block = updates.data() + start;
    for (std::size_t i = 0; i < n; ++i) {
      SKETCH_DCHECK(block[i].item < (1ULL << log_universe_));
      total_ += block[i].delta;
    }
    for (int l = 1; l <= log_universe_; ++l) {
      const int shift = log_universe_ - l;
      for (std::size_t i = 0; i < n; ++i) {
        prefixes[i] = {block[i].item >> shift, block[i].delta};
      }
      levels_[static_cast<std::size_t>(l - 1)].ApplyBatch(
          UpdateSpan(prefixes, n));
    }
  }
}

int64_t DyadicCountMin::Estimate(uint64_t item) const {
  return levels_.back().Estimate(item);
}

std::vector<uint64_t> DyadicCountMin::HeavyHitters(int64_t threshold) const {
  SKETCH_CHECK(threshold > 0);
  std::vector<uint64_t> result;
  // Frontier of candidate prefixes at the current level.
  std::vector<uint64_t> frontier = {0, 1};
  for (int l = 1; l <= log_universe_; ++l) {
    std::vector<uint64_t> next;
    for (uint64_t prefix : frontier) {
      if (levels_[l - 1].Estimate(prefix) < threshold) continue;
      if (l == log_universe_) {
        result.push_back(prefix);
      } else {
        next.push_back(prefix << 1);
        next.push_back((prefix << 1) | 1);
      }
    }
    frontier = std::move(next);
    if (l < log_universe_ && frontier.empty()) break;
  }
  std::sort(result.begin(), result.end());
  return result;
}

int64_t DyadicCountMin::RangeSum(uint64_t lo, uint64_t hi) const {
  SKETCH_CHECK(lo <= hi);
  SKETCH_CHECK(hi < (1ULL << log_universe_));
  // Decompose [lo, hi] into maximal dyadic intervals, summing each from
  // the sketch of the appropriate level. An interval of size 2^s aligned
  // at a multiple of 2^s is the node (lo >> s) at level log_universe - s.
  int64_t sum = 0;
  uint64_t cur = lo;
  while (cur <= hi) {
    // Largest aligned power-of-two block starting at cur that fits.
    int s = (cur == 0) ? log_universe_
                       : std::min<int>(log_universe_, __builtin_ctzll(cur));
    while (s > 0 &&
           (cur + (1ULL << s) - 1 > hi || cur + (1ULL << s) - 1 < cur)) {
      --s;
    }
    const int level = log_universe_ - s;
    if (level == 0) {
      sum += total_;  // whole-universe block
    } else {
      sum += levels_[level - 1].Estimate(cur >> s);
    }
    const uint64_t block = 1ULL << s;
    if (cur > hi - block + 1) break;  // avoid overflow at universe end
    cur += block;
    if (cur == 0) break;  // wrapped
  }
  return sum;
}

uint64_t DyadicCountMin::Quantile(double q) const {
  SKETCH_CHECK(q >= 0.0 && q <= 1.0);
  const auto target = static_cast<int64_t>(q * static_cast<double>(total_));
  // Binary-search the item domain using prefix sums; descend the dyadic
  // tree keeping the running mass to the left of the current node.
  uint64_t prefix = 0;
  int64_t mass_left = 0;
  for (int l = 1; l <= log_universe_; ++l) {
    const uint64_t left_child = prefix << 1;
    const int64_t left_mass = levels_[l - 1].Estimate(left_child);
    if (mass_left + left_mass >= target) {
      prefix = left_child;
    } else {
      mass_left += left_mass;
      prefix = left_child | 1;
    }
  }
  return prefix;
}

void DyadicCountMin::Merge(const DyadicCountMin& other) {
  SKETCH_CHECK_MSG(log_universe_ == other.log_universe_ &&
                       levels_.size() == other.levels_.size(),
                   "merge requires identical geometry and seed");
  for (size_t l = 0; l < levels_.size(); ++l) {
    levels_[l].Merge(other.levels_[l]);  // checks width/depth/seed
  }
  total_ += other.total_;
}

uint64_t DyadicCountMin::SizeInCounters() const {
  uint64_t total = 0;
  for (const CountMinSketch& s : levels_) total += s.SizeInCounters();
  return total;
}

uint64_t DyadicCountMin::MemoryFootprintBytes() const {
  // Each level reports sizeof(CountMinSketch) plus its heap allocations,
  // so only the container slack is added on top of this object.
  uint64_t bytes = sizeof(*this) + (levels_.capacity() - levels_.size()) *
                                       sizeof(CountMinSketch);
  for (const CountMinSketch& s : levels_) bytes += s.MemoryFootprintBytes();
  return bytes;
}

std::vector<uint8_t> DyadicCountMin::Serialize() const {
  // Header: magic, log_universe, total, width, depth (all levels share
  // geometry). Payload: log_universe full CountMin blobs, each of the
  // fixed size (4 + width * depth) words, carrying its own derived seed.
  const uint64_t width = levels_.front().width();
  const uint64_t depth = levels_.front().depth();
  std::vector<uint8_t> out;
  out.reserve(40 + levels_.size() * (32 + width * depth * 8));
  AppendU64(kDyadicMagic, &out);
  AppendU64(static_cast<uint64_t>(log_universe_), &out);
  AppendI64(total_, &out);
  AppendU64(width, &out);
  AppendU64(depth, &out);
  for (const CountMinSketch& level : levels_) {
    const std::vector<uint8_t> blob = level.Serialize();
    out.insert(out.end(), blob.begin(), blob.end());
  }
  return out;
}

DyadicCountMin DyadicCountMin::Deserialize(const std::vector<uint8_t>& bytes) {
  ByteReader reader(bytes);
  SKETCH_CHECK_MSG(reader.ReadU64() == kDyadicMagic,
                   "not a DyadicCountMin buffer");
  const uint64_t log_universe = reader.ReadU64();
  const int64_t total = reader.ReadI64();
  const uint64_t width = reader.ReadU64();
  const uint64_t depth = reader.ReadU64();
  SKETCH_CHECK_MSG(log_universe >= 1 && log_universe <= 40,
                   "invalid DyadicCountMin universe");
  SKETCH_CHECK_MSG(width >= 1 && depth >= 1,
                   "invalid DyadicCountMin geometry");
  const uint64_t level_words =
      4 + CheckedMulU64(width, depth, "DyadicCountMin geometry overflows");
  CheckSerializedSize(
      bytes, /*header_words=*/5,
      CheckedMulU64(log_universe, level_words,
                    "DyadicCountMin level table overflows"),
      "DyadicCountMin buffer size does not match geometry");
  DyadicCountMin sketch;
  sketch.log_universe_ = static_cast<int>(log_universe);
  sketch.total_ = total;
  sketch.levels_.reserve(log_universe);
  const uint64_t level_bytes = level_words * 8;
  for (uint64_t l = 0; l < log_universe; ++l) {
    const auto begin =
        bytes.begin() + static_cast<std::ptrdiff_t>(40 + l * level_bytes);
    const std::vector<uint8_t> blob(
        begin, begin + static_cast<std::ptrdiff_t>(level_bytes));
    sketch.levels_.push_back(CountMinSketch::Deserialize(blob));
    // The per-level blob's own geometry fields determine only its size;
    // pin them to the header so a crafted buffer cannot smuggle in levels
    // whose (width, depth) factorization differs from the dyadic header.
    SKETCH_CHECK_MSG(sketch.levels_.back().width() == width &&
                         sketch.levels_.back().depth() == depth,
                     "DyadicCountMin level geometry mismatch");
  }
  return sketch;
}

StatsSnapshot DyadicCountMin::Introspect() const {
  StatsSnapshot snapshot;
  snapshot.type = "DyadicCountMin";
  snapshot.memory_bytes = MemoryFootprintBytes();
  snapshot.cells = SizeInCounters();
  snapshot.AddField("log_universe", static_cast<double>(log_universe_));
  snapshot.AddField("levels", static_cast<double>(levels_.size()));
  snapshot.AddField("total_count", static_cast<double>(total_));
  snapshot.children.reserve(levels_.size());
  for (const CountMinSketch& s : levels_) {
    snapshot.children.push_back(s.Introspect());
  }
  return snapshot;
}

}  // namespace sketch
