#ifndef SKETCH_SKETCH_DYADIC_COUNT_MIN_H_
#define SKETCH_SKETCH_DYADIC_COUNT_MIN_H_

#include <cstdint>
#include <vector>

#include "sketch/count_min.h"
#include "stream/update.h"
#include "telemetry/stats.h"

namespace sketch {

/// Hierarchical (dyadic) Count-Min [CM03b, CM04]: one Count-Min sketch per
/// level of a binary decomposition of the universe [0, 2^log_universe).
/// Level l sketches the frequencies of the 2^l dyadic intervals of size
/// 2^(log_universe - l).
///
/// This realizes the survey's §1 recipe for actually *identifying* the
/// frequent elements (not just estimating a given item): descend from the
/// root, expanding only children whose estimated mass clears the
/// threshold — "frequent elements are mapped to heavy buckets" at every
/// scale, so the descent touches O(#heavy · log n) nodes instead of
/// scanning the universe.
///
/// Also supports range queries (sums over O(log n) dyadic pieces) and
/// approximate quantiles (binary search on prefix sums).
class DyadicCountMin {
 public:
  /// \param log_universe  universe is [0, 2^log_universe); must be <= 40.
  /// \param width, depth  geometry of the per-level Count-Min sketches.
  DyadicCountMin(int log_universe, uint64_t width, uint64_t depth,
                 uint64_t seed);

  /// Applies an update to every level.
  void Update(const StreamUpdate& update);

  /// Applies every update in `updates`.
  void UpdateAll(const std::vector<StreamUpdate>& updates);

  /// Batched entry point: applies a contiguous block of updates (the unit
  /// of work for the sharded ingestion engine in `src/parallel`).
  void ApplyBatch(UpdateSpan updates);

  /// Point estimate at the leaf level (same guarantee as CountMinSketch).
  int64_t Estimate(uint64_t item) const;

  /// All items whose estimated frequency is >= threshold, found by
  /// hierarchical descent. Output is sorted. Because Count-Min never
  /// underestimates, recall is 1 w.h.p.; false positives are possible.
  std::vector<uint64_t> HeavyHitters(int64_t threshold) const;

  /// Estimated sum of frequencies over [lo, hi] (inclusive).
  int64_t RangeSum(uint64_t lo, uint64_t hi) const;

  /// Approximate q-quantile (q in [0, 1]) of the item distribution:
  /// the smallest item x with estimated rank >= q * total.
  uint64_t Quantile(double q) const;

  /// Merges a dyadic sketch with identical geometry and seed (every level
  /// is a linear Count-Min sketch).
  void Merge(const DyadicCountMin& other);

  /// Total stream mass (exact; maintained as a counter).
  int64_t TotalCount() const { return total_; }

  int log_universe() const { return log_universe_; }

  /// Serializes the level structure and every per-level Count-Min blob to
  /// a portable little-endian byte buffer (all levels share geometry, so
  /// the layout is fixed once the header is read).
  std::vector<uint8_t> Serialize() const;

  /// Reconstructs a dyadic sketch from Serialize() output; aborts on
  /// malformed buffers.
  static DyadicCountMin Deserialize(const std::vector<uint8_t>& bytes);

  /// Space in counters across all levels.
  uint64_t SizeInCounters() const;

  /// Resident memory: the object plus every per-level sketch's footprint.
  uint64_t MemoryFootprintBytes() const;

  /// Structured self-description; per-level CountMin snapshots appear as
  /// children (see CountMinSketch::Introspect).
  StatsSnapshot Introspect() const;

  /// Human-readable Introspect() dump.
  std::string DebugString() const { return Introspect().DebugString(); }

 private:
  // Deserialize() rebuilds the levels directly from their serialized
  // blobs (each carries its own derived seed), so it starts from an empty
  // shell instead of the seeding constructor.
  DyadicCountMin() = default;

  int log_universe_ = 0;
  int64_t total_ = 0;
  std::vector<CountMinSketch> levels_;  // levels_[l] sketches level l+1
};

}  // namespace sketch

#endif  // SKETCH_SKETCH_DYADIC_COUNT_MIN_H_
