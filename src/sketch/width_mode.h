#ifndef SKETCH_SKETCH_WIDTH_MODE_H_
#define SKETCH_SKETCH_WIDTH_MODE_H_

#include <bit>
#include <cstdint>

#include "common/check.h"

/// \file
/// Bucket-geometry policy for the hashed-counter sketches.
///
/// Every sketch row maps a 61-bit hash onto [0, width). The default
/// (`kDivision`) honors the requested width exactly and reduces with
/// `FastDiv64::Mod`. The opt-in `kPow2` mode rounds the width up to the
/// next power of two at construction and reduces with a bit mask — the
/// layout both exemplar Count-Min codebases use — which lets the SIMD tier
/// fuse the bucket reduction into the hash lanes instead of staging hashes
/// through a scratch block.
///
/// Accuracy caveat: rounding the width changes the error bound. A sketch
/// asked for width w in kPow2 mode actually has bit_ceil(w) >= w buckets,
/// so its epsilon is e / bit_ceil(w) — never worse than requested, but any
/// bound *reported* for the sketch (e.g. by the server) must be computed
/// from the rounded width the sketch really has, not the requested one.
///
/// The two modes agree bit-for-bit at equal width: for a power-of-two w,
/// `FastDiv64::Mod(h)` and `h & (w - 1)` are the same function, which is
/// why the single-item paths (Estimate, Insert, UpdateConservative) need
/// no mode branch and why the property tests can compare the modes on
/// identical streams.

namespace sketch {

/// How a sketch row reduces hashes onto [0, width).
enum class WidthMode : uint64_t {
  kDivision = 0,  ///< exact requested width, FastDiv64 reduction (default)
  kPow2 = 1,      ///< width rounded up to a power of two, mask reduction
};

inline const char* WidthModeName(WidthMode mode) {
  return mode == WidthMode::kPow2 ? "pow2" : "division";
}

/// The width a sketch constructed with (`mode`, requested `width`) really
/// gets. Identity for kDivision; bit_ceil for kPow2. The requested width
/// must leave bit_ceil defined (<= 2^63); sketch constructors check their
/// own table-size limits on the *rounded* result.
inline uint64_t ApplyWidthMode(WidthMode mode, uint64_t width) {
  if (mode == WidthMode::kDivision) return width;
  SKETCH_CHECK_MSG(width >= 1 && width <= (1ULL << 63),
                   "pow2 width mode: requested width not representable");
  return std::bit_ceil(width);
}

/// Mask for the hot-loop bucket reduction: width - 1 in kPow2 mode (where
/// `width` is already rounded), unused (0) in division mode.
inline uint64_t WidthModeMask(WidthMode mode, uint64_t rounded_width) {
  if (mode != WidthMode::kPow2) return 0;
  SKETCH_CHECK_MSG(std::has_single_bit(rounded_width),
                   "pow2 width mode: width must be a power of two");
  return rounded_width - 1;
}

}  // namespace sketch

#endif  // SKETCH_SKETCH_WIDTH_MODE_H_
