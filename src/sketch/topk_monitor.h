#ifndef SKETCH_SKETCH_TOPK_MONITOR_H_
#define SKETCH_SKETCH_TOPK_MONITOR_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sketch/count_sketch.h"
#include "stream/update.h"

namespace sketch {

/// Continuous top-k tracking in the turnstile model — the [CCF02] "find
/// the k most frequent items" problem as a *monitor*: at any point in the
/// stream, `TopK()` returns the current best candidates without a scan.
///
/// SpaceSaving solves this for insert-only streams; this monitor also
/// survives deletions by backing every decision with a Count-Sketch:
/// a candidate pool (~4k items) of the largest sketch estimates is kept
/// incrementally — an item enters the pool when its updated estimate
/// beats the pool's minimum, and pool estimates are refreshed lazily from
/// the sketch (which, being linear, is always deletion-accurate).
///
/// Guarantees mirror Count-Sketch: items whose counts stand out by more
/// than eps*||x||_2 from the k-th largest are in the pool w.h.p. An item
/// whose *every* occurrence pre-dates monitoring cannot enter the pool
/// until touched again (the monitor sees candidates through updates).
class TopKMonitor {
 public:
  /// \param k            how many items TopK() reports.
  /// \param sketch_width Count-Sketch width (O(k/eps^2)).
  /// \param sketch_depth rows (odd; ~5).
  TopKMonitor(uint64_t k, uint64_t sketch_width, uint64_t sketch_depth,
              uint64_t seed);

  /// Applies an update and maintains the candidate pool. O(depth + log k).
  void Update(const StreamUpdate& update);

  /// Applies every update.
  void UpdateAll(const std::vector<StreamUpdate>& updates);

  /// The current top-k candidates, sorted by descending estimate (ties by
  /// item id). Refreshes pool estimates from the sketch first.
  std::vector<std::pair<uint64_t, int64_t>> TopK();

  /// Sketch estimate of one item (unbiased, two-sided error).
  int64_t Estimate(uint64_t item) const { return sketch_.Estimate(item); }

  uint64_t k() const { return k_; }
  uint64_t PoolSize() const { return pool_.size(); }

 private:
  void MaybeAdmit(uint64_t item);
  void ShrinkPool();

  uint64_t k_;
  uint64_t pool_capacity_;
  CountSketch sketch_;
  std::unordered_map<uint64_t, int64_t> pool_;  // item -> cached estimate
};

}  // namespace sketch

#endif  // SKETCH_SKETCH_TOPK_MONITOR_H_
