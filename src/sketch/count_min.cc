#include "sketch/count_min.h"

#include <algorithm>
#include <cmath>

#include "common/byte_buffer.h"
#include "common/check.h"
#include "common/prng.h"

namespace sketch {

namespace {
constexpr uint64_t kCountMinMagic = 0x534b434d494e3031ULL;  // "SKCMIN01"
}  // namespace

CountMinSketch::CountMinSketch(uint64_t width, uint64_t depth, uint64_t seed)
    : width_(width), depth_(depth), seed_(seed) {
  SKETCH_CHECK(width >= 1);
  SKETCH_CHECK(depth >= 1);
  SKETCH_CHECK_MSG(width <= UINT64_MAX / depth,
                   "counter table width * depth overflows");
  hashes_.reserve(depth);
  for (uint64_t j = 0; j < depth; ++j) {
    // Seed derivation must match MakeCountMinMatrix/HashedRecovery so the
    // sketch and its explicit matrix form implement the same linear map.
    hashes_.emplace_back(/*independence=*/2, SplitMix64Once(seed * 2 + j));
  }
  counters_.assign(width * depth, 0);
}

CountMinSketch CountMinSketch::FromErrorBounds(double eps, double delta,
                                               uint64_t seed) {
  SKETCH_CHECK(eps > 0.0 && eps < 1.0);
  SKETCH_CHECK(delta > 0.0 && delta < 1.0);
  const auto width = static_cast<uint64_t>(std::ceil(std::exp(1.0) / eps));
  const auto depth = static_cast<uint64_t>(std::ceil(std::log(1.0 / delta)));
  return CountMinSketch(width, std::max<uint64_t>(depth, 1), seed);
}

void CountMinSketch::Update(const StreamUpdate& update) {
  for (uint64_t j = 0; j < depth_; ++j) {
    counters_[j * width_ + hashes_[j].Bucket(update.item, width_)] +=
        update.delta;
  }
}

void CountMinSketch::UpdateAll(const std::vector<StreamUpdate>& updates) {
  ApplyBatch(updates);
}

void CountMinSketch::ApplyBatch(UpdateSpan updates) {
  for (const StreamUpdate& u : updates) Update(u);
}

void CountMinSketch::UpdateConservative(uint64_t item, int64_t delta) {
  SKETCH_CHECK(delta > 0);
  const int64_t target = Estimate(item) + delta;
  for (uint64_t j = 0; j < depth_; ++j) {
    int64_t& counter =
        counters_[j * width_ + hashes_[j].Bucket(item, width_)];
    counter = std::max(counter, target);
  }
}

int64_t CountMinSketch::Estimate(uint64_t item) const {
  int64_t best = counters_[hashes_[0].Bucket(item, width_)];
  for (uint64_t j = 1; j < depth_; ++j) {
    best = std::min(best,
                    counters_[j * width_ + hashes_[j].Bucket(item, width_)]);
  }
  return best;
}

int64_t CountMinSketch::EstimateInnerProduct(
    const CountMinSketch& other) const {
  SKETCH_CHECK_MSG(width_ == other.width_ && depth_ == other.depth_ &&
                       seed_ == other.seed_,
                   "inner product requires identical geometry and seed");
  int64_t best = 0;
  for (uint64_t j = 0; j < depth_; ++j) {
    int64_t row_product = 0;
    for (uint64_t b = 0; b < width_; ++b) {
      row_product += counters_[j * width_ + b] *
                     other.counters_[j * width_ + b];
    }
    best = (j == 0) ? row_product : std::min(best, row_product);
  }
  return best;
}

void CountMinSketch::Merge(const CountMinSketch& other) {
  SKETCH_CHECK_MSG(width_ == other.width_ && depth_ == other.depth_ &&
                       seed_ == other.seed_,
                   "merge requires identical geometry and seed");
  for (size_t i = 0; i < counters_.size(); ++i) {
    counters_[i] += other.counters_[i];
  }
}


std::vector<uint8_t> CountMinSketch::Serialize() const {
  std::vector<uint8_t> out;
  out.reserve(40 + counters_.size() * 8);
  AppendU64(kCountMinMagic, &out);
  AppendU64(width_, &out);
  AppendU64(depth_, &out);
  AppendU64(seed_, &out);
  for (int64_t c : counters_) AppendI64(c, &out);
  return out;
}

CountMinSketch CountMinSketch::Deserialize(
    const std::vector<uint8_t>& bytes) {
  ByteReader reader(bytes);
  SKETCH_CHECK_MSG(reader.ReadU64() == kCountMinMagic,
                   "not a CountMinSketch buffer");
  const uint64_t width = reader.ReadU64();
  const uint64_t depth = reader.ReadU64();
  const uint64_t seed = reader.ReadU64();
  SKETCH_CHECK_MSG(width >= 1 && depth >= 1,
                   "invalid CountMinSketch geometry");
  CheckSerializedSize(
      bytes, /*header_words=*/4,
      CheckedMulU64(width, depth, "CountMinSketch geometry overflows"),
      "CountMinSketch buffer size does not match geometry");
  CountMinSketch sketch(width, depth, seed);
  for (int64_t& c : sketch.counters_) c = reader.ReadI64();
  SKETCH_CHECK_MSG(reader.AtEnd(), "trailing bytes in CountMinSketch buffer");
  return sketch;
}

}  // namespace sketch
