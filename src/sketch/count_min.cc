#include "sketch/count_min.h"

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "common/byte_buffer.h"
#include "common/check.h"
#include "common/prng.h"
#include "telemetry/telemetry.h"

namespace sketch {

namespace {
constexpr uint64_t kCountMinMagic = 0x534b434d494e3031ULL;  // "SKCMIN01"
// v2 adds a width-mode word to the header; only written for non-default
// modes so division-mode buffers stay byte-identical to v1.
constexpr uint64_t kCountMinMagicV2 = 0x534b434d494e3032ULL;  // "SKCMIN02"
}  // namespace

CountMinSketch::CountMinSketch(uint64_t width, uint64_t depth, uint64_t seed,
                               WidthMode mode)
    : width_(ApplyWidthMode(mode, width)),
      depth_(depth),
      seed_(seed),
      width_mode_(mode),
      bucket_mask_(WidthModeMask(mode, width_)),
      width_div_(width_) {
  SKETCH_CHECK(width >= 1);
  SKETCH_CHECK(depth >= 1);
  SKETCH_CHECK_MSG(width_ <= UINT64_MAX / depth,
                   "counter table width * depth overflows");
  rows_.reserve(depth);
  for (uint64_t j = 0; j < depth; ++j) {
    // Seed derivation must match MakeCountMinMatrix/HashedRecovery so the
    // sketch and its explicit matrix form implement the same linear map.
    rows_.emplace_back(KWiseHash(/*independence=*/2,
                                 SplitMix64Once(seed * 2 + j)));
  }
  counters_.assign(width_ * depth, 0);
  bucket_scratch_.assign(depth, 0);
}

CountMinSketch CountMinSketch::FromErrorBounds(double eps, double delta,
                                               uint64_t seed) {
  SKETCH_CHECK(eps > 0.0 && eps < 1.0);
  SKETCH_CHECK(delta > 0.0 && delta < 1.0);
  const auto width = static_cast<uint64_t>(std::ceil(std::exp(1.0) / eps));
  const auto depth = static_cast<uint64_t>(std::ceil(std::log(1.0 / delta)));
  return CountMinSketch(width, std::max<uint64_t>(depth, 1), seed);
}

void CountMinSketch::Update(const StreamUpdate& update) {
  ops_.AddUpdates(1);
  for (uint64_t j = 0; j < depth_; ++j) {
    counters_[j * width_ + rows_[j].BucketOne(update.item, width_div_)] +=
        update.delta;
  }
}

void CountMinSketch::UpdateAll(const std::vector<StreamUpdate>& updates) {
  ApplyBatch(updates);
}

void CountMinSketch::ApplyBatch(UpdateSpan updates) {
  // Kernelized bulk path: structure-of-arrays traversal. For each block of
  // updates, one row's buckets are computed in a batch (BlockHasher) and
  // applied contiguously before moving to the next row, so the hash
  // coefficients stay in registers and each row's counter lines are
  // touched together. Counter addition commutes, so the final table — and
  // therefore Serialize() — is bit-identical to per-item Update() calls.
  SKETCH_TRACE_SPAN("count_min.apply_batch");
  SKETCH_COUNTER_ADD("sketch.count_min.batched_updates", updates.size());
  SKETCH_HISTOGRAM_RECORD("sketch.batch_size", updates.size());
  ops_.AddBatch(updates.size());
  constexpr std::size_t kBlock = 256;
  constexpr std::size_t kPrefetchAhead = 8;
  uint64_t keys[kBlock];
  uint64_t buckets[kBlock];
  const FastDiv64 div = width_div_;  // local copy keeps the magic constant
                                     // register-resident across the row loop
  const std::size_t total = updates.size();
  for (std::size_t start = 0; start < total; start += kBlock) {
    const std::size_t n = std::min(kBlock, total - start);
    const StreamUpdate* block = updates.data() + start;
    for (std::size_t i = 0; i < n; ++i) keys[i] = block[i].item;
    for (uint64_t j = 0; j < depth_; ++j) {
      if (width_mode_ == WidthMode::kPow2) {
        rows_[j].BucketBlockPow2(keys, n, bucket_mask_, buckets);
      } else {
        rows_[j].BucketBlock(keys, n, div, buckets);
      }
      int64_t* row = counters_.data() + j * width_;
      for (std::size_t i = 0; i < n; ++i) {
        if (i + kPrefetchAhead < n) {
          __builtin_prefetch(row + buckets[i + kPrefetchAhead], 1, 1);
        }
        row[buckets[i]] += block[i].delta;
      }
    }
  }
}

void CountMinSketch::UpdateConservative(uint64_t item, int64_t delta) {
  SKETCH_CHECK(delta > 0);
  ops_.AddUpdates(1);
  // Hash each row exactly once: the bucket feeds both the min-read (what
  // Estimate() would recompute) and the conservative write-back.
  int64_t estimate = 0;
  for (uint64_t j = 0; j < depth_; ++j) {
    const uint64_t b = rows_[j].BucketOne(item, width_div_);
    bucket_scratch_[j] = b;
    const int64_t c = counters_[j * width_ + b];
    estimate = (j == 0) ? c : std::min(estimate, c);
  }
  const int64_t target = estimate + delta;
  for (uint64_t j = 0; j < depth_; ++j) {
    int64_t& counter = counters_[j * width_ + bucket_scratch_[j]];
    counter = std::max(counter, target);
  }
}

int64_t CountMinSketch::Estimate(uint64_t item) const {
  int64_t best = counters_[rows_[0].BucketOne(item, width_div_)];
  for (uint64_t j = 1; j < depth_; ++j) {
    best = std::min(
        best, counters_[j * width_ + rows_[j].BucketOne(item, width_div_)]);
  }
  return best;
}

void CountMinSketch::EstimateBatch(const uint64_t* items, std::size_t n,
                                   int64_t* out) const {
  // Query-side mirror of ApplyBatch: per block of keys, each row batch-
  // computes its buckets (same BlockHasher kernels, so the same SIMD
  // dispatch applies) and folds its counters into the running min. The
  // min over rows is order-free, so out[i] == Estimate(items[i]) exactly.
  SKETCH_TRACE_SPAN("count_min.estimate_batch");
  SKETCH_COUNTER_ADD("sketch.count_min.batched_estimates", n);
  constexpr std::size_t kBlock = 256;
  uint64_t buckets[kBlock];
  const FastDiv64 div = width_div_;
  for (std::size_t start = 0; start < n; start += kBlock) {
    const std::size_t block_n = std::min(kBlock, n - start);
    const uint64_t* keys = items + start;
    int64_t* block_out = out + start;
    for (uint64_t j = 0; j < depth_; ++j) {
      if (width_mode_ == WidthMode::kPow2) {
        rows_[j].BucketBlockPow2(keys, block_n, bucket_mask_, buckets);
      } else {
        rows_[j].BucketBlock(keys, block_n, div, buckets);
      }
      const int64_t* row = counters_.data() + j * width_;
      if (j == 0) {
        for (std::size_t i = 0; i < block_n; ++i) {
          block_out[i] = row[buckets[i]];
        }
      } else {
        for (std::size_t i = 0; i < block_n; ++i) {
          block_out[i] = std::min(block_out[i], row[buckets[i]]);
        }
      }
    }
  }
}

int64_t CountMinSketch::EstimateInnerProduct(
    const CountMinSketch& other) const {
  SKETCH_CHECK_MSG(width_ == other.width_ && depth_ == other.depth_ &&
                       seed_ == other.seed_ &&
                       width_mode_ == other.width_mode_,
                   "inner product requires identical geometry and seed");
  int64_t best = 0;
  for (uint64_t j = 0; j < depth_; ++j) {
    int64_t row_product = 0;
    for (uint64_t b = 0; b < width_; ++b) {
      row_product += counters_[j * width_ + b] *
                     other.counters_[j * width_ + b];
    }
    best = (j == 0) ? row_product : std::min(best, row_product);
  }
  return best;
}

void CountMinSketch::Merge(const CountMinSketch& other) {
  SKETCH_CHECK_MSG(width_ == other.width_ && depth_ == other.depth_ &&
                       seed_ == other.seed_ &&
                       width_mode_ == other.width_mode_,
                   "merge requires identical geometry and seed");
  SKETCH_COUNTER_INC("sketch.count_min.merges");
  ops_.AddMerge(other.ops_);
  for (size_t i = 0; i < counters_.size(); ++i) {
    counters_[i] += other.counters_[i];
  }
}

uint64_t CountMinSketch::MemoryFootprintBytes() const {
  uint64_t bytes = sizeof(*this) +
                   counters_.capacity() * sizeof(int64_t) +
                   bucket_scratch_.capacity() * sizeof(uint64_t) +
                   rows_.capacity() * sizeof(BlockHasher);
  for (const BlockHasher& row : rows_) bytes += row.DynamicMemoryBytes();
  return bytes;
}

StatsSnapshot CountMinSketch::Introspect() const {
  StatsSnapshot snapshot;
  snapshot.type = "CountMinSketch";
  snapshot.memory_bytes = MemoryFootprintBytes();
  snapshot.cells = counters_.size();
  snapshot.AddField("width", static_cast<double>(width_));
  snapshot.AddField("depth", static_cast<double>(depth_));
  snapshot.AddField("seed", static_cast<double>(seed_));
  snapshot.AddField("width_mode", static_cast<double>(width_mode_));
  snapshot.occupancy_log2 =
      telemetry::MagnitudeHistogram(counters_.data(), counters_.size());
  const double occupied = telemetry::OccupiedFraction(
      snapshot.occupancy_log2, counters_.size());
  snapshot.AddField("occupied_fraction", occupied);
  // Every row sees the full key stream, so the overall occupied fraction
  // is an unbiased view of a single row's load; invert it to estimate the
  // distinct keys and the per-key collision rate behind the eps*||x||_1
  // error bound.
  const double distinct = telemetry::EstimateDistinctKeys(
      occupied, static_cast<double>(width_));
  snapshot.AddField("estimated_distinct_keys", distinct);
  snapshot.AddField(
      "estimated_collision_rate",
      telemetry::EstimateCollisionRate(distinct,
                                       static_cast<double>(width_)));
  snapshot.AddField("updates", static_cast<double>(ops_.updates()));
  snapshot.AddField("batches", static_cast<double>(ops_.batches()));
  snapshot.AddField("merges", static_cast<double>(ops_.merges()));
  return snapshot;
}

std::vector<uint8_t> CountMinSketch::Serialize() const {
  std::vector<uint8_t> out;
  out.reserve(48 + counters_.size() * 8);
  // Division-mode buffers keep the v1 layout byte for byte (committed
  // goldens and cross-version restores depend on it); pow2 sketches write
  // the v2 magic and append the mode word to the header.
  if (width_mode_ == WidthMode::kDivision) {
    AppendU64(kCountMinMagic, &out);
    AppendU64(width_, &out);
    AppendU64(depth_, &out);
    AppendU64(seed_, &out);
  } else {
    AppendU64(kCountMinMagicV2, &out);
    AppendU64(width_, &out);
    AppendU64(depth_, &out);
    AppendU64(seed_, &out);
    AppendU64(static_cast<uint64_t>(width_mode_), &out);
  }
  for (int64_t c : counters_) AppendI64(c, &out);
  return out;
}

CountMinSketch CountMinSketch::Deserialize(
    const std::vector<uint8_t>& bytes) {
  ByteReader reader(bytes);
  const uint64_t magic = reader.ReadU64();
  SKETCH_CHECK_MSG(magic == kCountMinMagic || magic == kCountMinMagicV2,
                   "not a CountMinSketch buffer");
  const uint64_t width = reader.ReadU64();
  const uint64_t depth = reader.ReadU64();
  const uint64_t seed = reader.ReadU64();
  SKETCH_CHECK_MSG(width >= 1 && depth >= 1,
                   "invalid CountMinSketch geometry");
  WidthMode mode = WidthMode::kDivision;
  uint64_t header_words = 4;
  if (magic == kCountMinMagicV2) {
    const uint64_t mode_word = reader.ReadU64();
    // v2 is only written for non-default modes; a division-mode v2 buffer
    // is malformed, not merely redundant.
    SKETCH_CHECK_MSG(mode_word == static_cast<uint64_t>(WidthMode::kPow2),
                     "invalid CountMinSketch width mode");
    SKETCH_CHECK_MSG((width & (width - 1)) == 0,
                     "pow2 CountMinSketch width is not a power of two");
    mode = WidthMode::kPow2;
    header_words = 5;
  }
  CheckSerializedSize(
      bytes, header_words,
      CheckedMulU64(width, depth, "CountMinSketch geometry overflows"),
      "CountMinSketch buffer size does not match geometry");
  CountMinSketch sketch(width, depth, seed, mode);
  for (int64_t& c : sketch.counters_) c = reader.ReadI64();
  SKETCH_CHECK_MSG(reader.AtEnd(), "trailing bytes in CountMinSketch buffer");
  return sketch;
}

}  // namespace sketch
