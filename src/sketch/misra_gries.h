#ifndef SKETCH_SKETCH_MISRA_GRIES_H_
#define SKETCH_SKETCH_MISRA_GRIES_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace sketch {

/// Misra–Gries frequent-items summary: the classical *deterministic*
/// counter algorithm the hashing sketches of §1 are compared against.
/// Keeps at most `capacity` (item, counter) pairs; when a new item arrives
/// with the table full, every counter is decremented (items at zero are
/// evicted).
///
/// Guarantee (insert-only streams): for every item,
///   true count - N/(capacity+1) <= Estimate(item) <= true count,
/// so any item with frequency > N/(capacity+1) is retained. Deterministic,
/// but supports no deletions and underestimates (the mirror image of
/// Count-Min's overestimation).
class MisraGries {
 public:
  explicit MisraGries(uint64_t capacity);

  /// Processes one occurrence of `item` (cash-register model only).
  void Update(uint64_t item, uint64_t count = 1);

  /// Lower-bound estimate of the item's frequency (0 if not tracked).
  int64_t Estimate(uint64_t item) const;

  /// Tracked items with counter >= threshold, sorted.
  std::vector<uint64_t> ItemsAbove(int64_t threshold) const;

  /// All currently tracked (item, counter) pairs.
  const std::unordered_map<uint64_t, int64_t>& counters() const {
    return counters_;
  }

  uint64_t capacity() const { return capacity_; }

 private:
  uint64_t capacity_;
  std::unordered_map<uint64_t, int64_t> counters_;
};

}  // namespace sketch

#endif  // SKETCH_SKETCH_MISRA_GRIES_H_
