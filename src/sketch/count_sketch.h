#ifndef SKETCH_SKETCH_COUNT_SKETCH_H_
#define SKETCH_SKETCH_COUNT_SKETCH_H_

#include <cstdint>
#include <vector>

#include "hash/kwise_hash.h"
#include "kernels/block_hasher.h"
#include "kernels/fast_div.h"
#include "sketch/width_mode.h"
#include "stream/update.h"
#include "telemetry/stats.h"

namespace sketch {

/// Count-Sketch [CCF02]: like Count-Min but each update is multiplied by a
/// pairwise-independent random sign g_j(a) ∈ {±1} before being added to
/// counter (j, h_j(a)), and the point query takes the *median* over rows of
/// g_j(a) * c[j][h_j(a)].
///
/// The random signs make each row's estimate *unbiased* (colliding items
/// cancel in expectation), which is the footnoted "randomly chosen
/// increments" variant of the survey's §1. Guarantee: the estimate is
/// within eps * ||x||_2 of the truth with prob >= 1 - delta when
/// width = O(1/eps^2), depth = O(log(1/delta)) — an L2 guarantee, stronger
/// than Count-Min's L1 bound on skewed data.
class CountSketch {
 public:
  /// In `WidthMode::kPow2` the requested width is rounded up to the next
  /// power of two (width() reports the rounded value; the L2 bound must be
  /// computed from it) and the hot-loop bucket reduction becomes a mask.
  CountSketch(uint64_t width, uint64_t depth, uint64_t seed,
              WidthMode mode = WidthMode::kDivision);

  /// Sizes from the (eps, delta) L2 guarantee: width = ceil(3/eps^2),
  /// depth = ceil(ln(1/delta)) rounded up to odd (median-friendly).
  static CountSketch FromErrorBounds(double eps, double delta, uint64_t seed);

  /// Applies an update (any delta; linear sketch).
  void Update(const StreamUpdate& update);

  /// Applies every update in `updates`.
  void UpdateAll(const std::vector<StreamUpdate>& updates);

  /// Batched entry point: applies a contiguous block of updates (the unit
  /// of work for the sharded ingestion engine in `src/parallel`).
  void ApplyBatch(UpdateSpan updates);

  /// Point query: median over rows of sign-corrected counters. Unbiased
  /// per row; the median gives the high-probability bound.
  int64_t Estimate(uint64_t item) const;

  /// Batched point query: fills out[i] = Estimate(items[i]) for all `n`
  /// items, bit-identically, with buckets and signs computed through the
  /// same BlockHasher batch kernels ApplyBatch uses (SIMD-dispatched).
  void EstimateBatch(const uint64_t* items, std::size_t n,
                     int64_t* out) const;

  /// Estimate from a single row (used by tests for unbiasedness and by the
  /// sparse-recovery layer).
  int64_t EstimateRow(uint64_t row, uint64_t item) const;

  /// Merges a sketch with identical geometry and seed (linear).
  void Merge(const CountSketch& other);

  /// Estimates <x, y> of the two sketched frequency vectors: per row, sum
  /// of counter products (unbiased — colliding cross terms carry random
  /// signs); median over rows. Two-sided error eps*||x||_2*||y||_2 w.h.p.
  /// Requires identical geometry and seed.
  int64_t EstimateInnerProduct(const CountSketch& other) const;

  /// Actual table width (already rounded in kPow2 mode).
  uint64_t width() const { return width_; }
  uint64_t depth() const { return depth_; }
  uint64_t seed() const { return seed_; }
  WidthMode width_mode() const { return width_mode_; }
  uint64_t SizeInCounters() const { return width_ * depth_; }

  /// Bucket / sign of an item in a row; exposed for the measurement-matrix
  /// view used by `src/cs` and `src/dimred`.
  uint64_t BucketOf(uint64_t row, uint64_t item) const {
    return bucket_rows_[row].BucketOne(item, width_div_);
  }
  int SignOf(uint64_t row, uint64_t item) const {
    return static_cast<int>(sign_rows_[row].SignOne(item));
  }

  int64_t CounterAt(uint64_t row, uint64_t bucket) const {
    return counters_[row * width_ + bucket];
  }

  /// Serializes geometry, seed, and counters to a portable little-endian
  /// byte buffer (hash functions are rebuilt from the seed on load).
  std::vector<uint8_t> Serialize() const;

  /// Reconstructs a sketch from Serialize() output; aborts on malformed
  /// buffers.
  static CountSketch Deserialize(const std::vector<uint8_t>& bytes);

  /// Resident memory of this sketch: the object plus every owned heap
  /// allocation (counter table, bucket/sign hashers).
  uint64_t MemoryFootprintBytes() const;

  /// Structured self-description (see CountMinSketch::Introspect).
  StatsSnapshot Introspect() const;

  /// Human-readable Introspect() dump.
  std::string DebugString() const { return Introspect().DebugString(); }

 private:
  uint64_t width_;
  uint64_t depth_;
  uint64_t seed_;
  WidthMode width_mode_;
  uint64_t bucket_mask_;                  // width_ - 1 in kPow2 mode, else 0
  FastDiv64 width_div_;                  // divide-free `% width_`; equals
                                         // the mask for pow2 widths
  std::vector<BlockHasher> bucket_rows_;  // one 2-wise bucket hash per row
  std::vector<BlockHasher> sign_rows_;    // one 2-wise sign hash per row
  std::vector<int64_t> counters_;
  SketchOpCounters ops_;  // lifetime update/merge counts (stub when off)
};

}  // namespace sketch

#endif  // SKETCH_SKETCH_COUNT_SKETCH_H_
