#ifndef SKETCH_SKETCH_AMS_SKETCH_H_
#define SKETCH_SKETCH_AMS_SKETCH_H_

#include <cstdint>
#include <vector>

#include "hash/kwise_hash.h"
#include "kernels/block_hasher.h"
#include "kernels/fast_div.h"
#include "stream/update.h"
#include "telemetry/stats.h"

namespace sketch {

/// AMS "tug-of-war" sketch (Alon–Matias–Szegedy) for the second frequency
/// moment F2 = ||x||_2^2, in its hashed "fast AMS" form: each row is a
/// Count-Sketch row (4-wise independent signs), and the row's F2 estimate
/// is the sum of squared counters. The median over rows concentrates.
///
/// Included because F2 estimation is the original theory ancestor of
/// Count-Sketch and the simplest instance of "sketching as dimensionality
/// reduction" (§3): a Count-Sketch row is an ℓ2-norm-preserving random
/// projection.
class AmsSketch {
 public:
  AmsSketch(uint64_t width, uint64_t depth, uint64_t seed);

  /// Applies an update (any delta; linear sketch).
  void Update(const StreamUpdate& update);

  /// Applies every update.
  void UpdateAll(const std::vector<StreamUpdate>& updates);

  /// Batched entry point: applies a contiguous block of updates (the unit
  /// of work for the sharded ingestion engine in `src/parallel`).
  void ApplyBatch(UpdateSpan updates);

  /// Median-of-rows estimate of F2 = sum_i count(i)^2.
  double EstimateF2() const;

  /// Merges a sketch with identical geometry and seed.
  void Merge(const AmsSketch& other);

  /// Serializes geometry, seed, and counters to a portable little-endian
  /// byte buffer (hash functions are rebuilt from the seed on load).
  std::vector<uint8_t> Serialize() const;

  /// Reconstructs a sketch from Serialize() output; aborts on malformed
  /// buffers.
  static AmsSketch Deserialize(const std::vector<uint8_t>& bytes);

  uint64_t width() const { return width_; }
  uint64_t depth() const { return depth_; }
  uint64_t seed() const { return seed_; }

  /// Resident memory of this sketch: the object plus every owned heap
  /// allocation (counter table, bucket/sign hashers).
  uint64_t MemoryFootprintBytes() const;

  /// Structured self-description (see CountMinSketch::Introspect).
  StatsSnapshot Introspect() const;

  /// Human-readable Introspect() dump.
  std::string DebugString() const { return Introspect().DebugString(); }

 private:
  uint64_t width_;
  uint64_t depth_;
  uint64_t seed_;
  FastDiv64 width_div_;                   // divide-free `% width_`
  std::vector<BlockHasher> bucket_rows_;  // 2-wise
  std::vector<BlockHasher> sign_rows_;    // 4-wise (needed for variance
                                          // bound); hits the unrolled k=4
                                          // kernel path
  std::vector<int64_t> counters_;
  SketchOpCounters ops_;  // lifetime update/merge counts (stub when off)
};

}  // namespace sketch

#endif  // SKETCH_SKETCH_AMS_SKETCH_H_
