#include "sketch/counter_braids.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "common/prng.h"

namespace sketch {

namespace {

constexpr uint64_t kUnbounded = std::numeric_limits<uint64_t>::max();

/// A nonnegative-integer interval; hi == kUnbounded means "no upper bound".
struct Interval {
  uint64_t lo = 0;
  uint64_t hi = kUnbounded;
  bool Pinned() const { return lo == hi; }
};

/// Aggregates of variable bounds incident to each equation.
struct EquationSums {
  std::vector<uint64_t> sum_lower;
  std::vector<uint64_t> sum_upper;  // over variables with finite upper
  std::vector<uint64_t> num_unbounded;
};

EquationSums ComputeSums(const std::vector<std::vector<uint64_t>>& edges,
                         size_t num_equations,
                         const std::vector<Interval>& vars) {
  EquationSums sums;
  sums.sum_lower.assign(num_equations, 0);
  sums.sum_upper.assign(num_equations, 0);
  sums.num_unbounded.assign(num_equations, 0);
  for (size_t v = 0; v < edges.size(); ++v) {
    for (uint64_t j : edges[v]) {
      sums.sum_lower[j] += vars[v].lo;
      if (vars[v].hi == kUnbounded) {
        ++sums.num_unbounded[j];
      } else {
        sums.sum_upper[j] += vars[v].hi;
      }
    }
  }
  return sums;
}

/// One sweep of bound tightening for Sum_{v in eq j} x_v = totals[j]
/// (totals themselves given as intervals). Returns true if any variable
/// bound moved.
bool TightenVariables(const std::vector<std::vector<uint64_t>>& edges,
                      const std::vector<Interval>& totals,
                      std::vector<Interval>* vars) {
  // Jacobi-style sweep: all "other variables" terms are evaluated against
  // the bounds from the start of the sweep (`old`), never the bounds being
  // written — mixing them would subtract a variable's *new* bound from
  // sums computed with its old one.
  const std::vector<Interval> old = *vars;
  const EquationSums sums = ComputeSums(edges, totals.size(), old);
  bool changed = false;
  for (size_t v = 0; v < edges.size(); ++v) {
    Interval& iv = (*vars)[v];
    const Interval& ov = old[v];
    for (uint64_t j : edges[v]) {
      const Interval& tj = totals[j];
      // Upper: total_hi - sum of others' lowers.
      if (tj.hi != kUnbounded) {
        const uint64_t others_lower = sums.sum_lower[j] - ov.lo;
        const uint64_t up = tj.hi >= others_lower ? tj.hi - others_lower : 0;
        if (up < iv.hi) {
          iv.hi = up;
          changed = true;
        }
      }
      // Lower: total_lo - sum of others' uppers (needs all others finite).
      const uint64_t others_unbounded =
          sums.num_unbounded[j] - (ov.hi == kUnbounded ? 1 : 0);
      if (others_unbounded == 0) {
        const uint64_t others_upper =
            sums.sum_upper[j] - (ov.hi == kUnbounded ? 0 : ov.hi);
        if (tj.lo > others_upper && tj.lo - others_upper > iv.lo) {
          iv.lo = tj.lo - others_upper;
          changed = true;
        }
      }
    }
    if (iv.hi != kUnbounded && iv.lo > iv.hi) iv.lo = iv.hi;  // defensive
  }
  return changed;
}

/// Interval of Sum_{v in eq j} x_v implied by current variable bounds.
std::vector<Interval> EquationTotalsFromVariables(
    const std::vector<std::vector<uint64_t>>& edges, size_t num_equations,
    const std::vector<Interval>& vars) {
  const EquationSums sums = ComputeSums(edges, num_equations, vars);
  std::vector<Interval> totals(num_equations);
  for (size_t j = 0; j < num_equations; ++j) {
    totals[j].lo = sums.sum_lower[j];
    totals[j].hi =
        sums.num_unbounded[j] > 0 ? kUnbounded : sums.sum_upper[j];
  }
  return totals;
}

}  // namespace

BraidDecodeOutput SolveBraid(const std::vector<std::vector<uint64_t>>& edges,
                             const std::vector<uint64_t>& totals,
                             int max_iterations) {
  std::vector<Interval> total_intervals(totals.size());
  for (size_t j = 0; j < totals.size(); ++j) {
    total_intervals[j] = {totals[j], totals[j]};
  }
  std::vector<Interval> vars(edges.size());
  BraidDecodeOutput out;
  for (out.iterations = 1; out.iterations <= max_iterations;
       ++out.iterations) {
    if (!TightenVariables(edges, total_intervals, &vars)) break;
  }
  out.values.resize(edges.size());
  out.exact = true;
  for (size_t v = 0; v < edges.size(); ++v) {
    if (vars[v].Pinned()) {
      out.values[v] = vars[v].lo;
    } else {
      out.exact = false;
      out.values[v] = vars[v].hi == kUnbounded
                          ? vars[v].lo
                          : (vars[v].lo + vars[v].hi) / 2;
    }
  }
  return out;
}

CounterBraids::CounterBraids(const Options& options) : options_(options) {
  SKETCH_CHECK(options.layer1_counters >= 1);
  SKETCH_CHECK(options.layer2_counters >= 1);
  SKETCH_CHECK(options.layer1_bits >= 1 && options.layer1_bits < 63);
  SKETCH_CHECK(options.hashes_per_flow >= 2);
  SKETCH_CHECK(options.hashes_per_overflow >= 2);
  layer1_mask_ = (1ULL << options.layer1_bits) - 1;
  layer1_.assign(options.layer1_counters, 0);
  layer2_.assign(options.layer2_counters, 0);
  for (int i = 0; i < options.hashes_per_flow; ++i) {
    flow_hashes_.emplace_back(2, SplitMix64Once(options.seed + 17 * i));
  }
  for (int i = 0; i < options.hashes_per_overflow; ++i) {
    overflow_hashes_.emplace_back(2, SplitMix64Once(~options.seed + 23 * i));
  }
}

std::vector<uint64_t> CounterBraids::FlowCells(uint64_t flow) const {
  // Partitioned sub-tables so a flow occupies distinct cells.
  const uint64_t sub = options_.layer1_counters / flow_hashes_.size();
  std::vector<uint64_t> cells(flow_hashes_.size());
  for (size_t i = 0; i < flow_hashes_.size(); ++i) {
    cells[i] = i * sub + flow_hashes_[i].Bucket(flow, sub);
  }
  return cells;
}

std::vector<uint64_t> CounterBraids::OverflowCells(
    uint64_t counter_index) const {
  const uint64_t sub = options_.layer2_counters / overflow_hashes_.size();
  std::vector<uint64_t> cells(overflow_hashes_.size());
  for (size_t i = 0; i < overflow_hashes_.size(); ++i) {
    cells[i] = i * sub + overflow_hashes_[i].Bucket(counter_index, sub);
  }
  return cells;
}

void CounterBraids::Update(uint64_t flow, uint64_t count) {
  for (uint64_t cell : FlowCells(flow)) {
    uint64_t value = layer1_[cell] + count;
    // Each wrap past 2^bits is one overflow event braided into layer 2.
    const uint64_t overflows = value >> options_.layer1_bits;
    layer1_[cell] = value & layer1_mask_;
    if (overflows > 0) {
      for (uint64_t l2 : OverflowCells(cell)) layer2_[l2] += overflows;
    }
  }
}

CounterBraids::DecodeResult CounterBraids::Decode(
    const std::vector<uint64_t>& flows, int max_iterations) const {
  DecodeResult result;
  const uint64_t base = 1ULL << options_.layer1_bits;

  // Joint message passing over both layers (the decoder of [LMP+08]):
  //   flow vars    x_f, with  Sum_{f in c} x_f = V_c          (layer 1)
  //   overflow vars o_c, with V_c = layer1_[c] + base * o_c
  //                       and Sum_{c in t} o_c = layer2_[t]   (layer 2)
  // Bounds flow in both directions until a fixpoint: layer-2 equations
  // bound the o_c, which bound the V_c, which bound the x_f — and the
  // x_f sums bound the V_c from below/above, which in turn pin more o_c.
  std::vector<std::vector<uint64_t>> flow_edges(flows.size());
  for (size_t v = 0; v < flows.size(); ++v) {
    flow_edges[v] = FlowCells(flows[v]);
  }
  std::vector<std::vector<uint64_t>> overflow_edges(
      options_.layer1_counters);
  for (uint64_t c = 0; c < options_.layer1_counters; ++c) {
    overflow_edges[c] = OverflowCells(c);
  }
  std::vector<Interval> l2_totals(options_.layer2_counters);
  for (uint64_t t = 0; t < options_.layer2_counters; ++t) {
    l2_totals[t] = {layer2_[t], layer2_[t]};
  }

  std::vector<Interval> x(flows.size());
  std::vector<Interval> o(options_.layer1_counters);

  for (result.iterations = 1; result.iterations <= max_iterations;
       ++result.iterations) {
    bool changed = false;

    // (B) layer-2 equations tighten the overflow counts.
    changed |= TightenVariables(overflow_edges, l2_totals, &o);

    // V_c interval from o_c: V = layer1 + base * o.
    std::vector<Interval> v_totals(options_.layer1_counters);
    for (uint64_t c = 0; c < options_.layer1_counters; ++c) {
      v_totals[c].lo = layer1_[c] + base * o[c].lo;
      v_totals[c].hi = o[c].hi == kUnbounded
                           ? kUnbounded
                           : layer1_[c] + base * o[c].hi;
    }

    // (A) layer-1 equations tighten the flows.
    changed |= TightenVariables(flow_edges, v_totals, &x);

    // Reverse: flow sums bound V_c, and congruence V_c = layer1_[c]
    // (mod base) snaps the bounds to the lattice, tightening o_c.
    const std::vector<Interval> v_from_flows = EquationTotalsFromVariables(
        flow_edges, options_.layer1_counters, x);
    for (uint64_t c = 0; c < options_.layer1_counters; ++c) {
      // Smallest achievable total >= sum of flow lowers that is congruent
      // to layer1_[c] mod base.
      uint64_t lo = v_from_flows[c].lo;
      uint64_t snapped_lo =
          lo <= layer1_[c]
              ? layer1_[c]
              : layer1_[c] +
                    ((lo - layer1_[c] + base - 1) / base) * base;
      const uint64_t o_lo = (snapped_lo - layer1_[c]) / base;
      if (o_lo > o[c].lo) {
        o[c].lo = o_lo;
        changed = true;
      }
      if (v_from_flows[c].hi != kUnbounded &&
          v_from_flows[c].hi >= layer1_[c]) {
        const uint64_t o_hi = (v_from_flows[c].hi - layer1_[c]) / base;
        if (o_hi < o[c].hi) {
          o[c].hi = o_hi;
          changed = true;
        }
      } else if (v_from_flows[c].hi != kUnbounded &&
                 v_from_flows[c].hi < layer1_[c]) {
        // Sum below the stored low bits: only consistent with o = 0 and
        // (necessarily) zero flows; clamp.
        if (o[c].hi != 0) {
          o[c].hi = 0;
          changed = true;
        }
      }
    }

    if (!changed) break;
  }

  result.exact = true;
  for (size_t v = 0; v < flows.size(); ++v) {
    if (x[v].Pinned()) {
      result.counts[flows[v]] = x[v].lo;
    } else {
      result.exact = false;
      result.counts[flows[v]] =
          x[v].hi == kUnbounded ? x[v].lo : (x[v].lo + x[v].hi) / 2;
    }
  }
  return result;
}

uint64_t CounterBraids::SizeInBits() const {
  return options_.layer1_counters * options_.layer1_bits +
         options_.layer2_counters * 64;
}

}  // namespace sketch
