#include "sketch/iblt.h"

#include <deque>

#include "common/check.h"
#include "common/prng.h"

namespace sketch {

Iblt::Iblt(uint64_t num_cells, int num_hashes, uint64_t seed) : seed_(seed) {
  SKETCH_CHECK(num_hashes >= 2);
  SKETCH_CHECK(num_cells >= static_cast<uint64_t>(num_hashes));
  // Partition the table into `num_hashes` equal sub-tables so each key
  // occupies `num_hashes` *distinct* cells — required for peeling to make
  // progress.
  const uint64_t sub_size = num_cells / num_hashes;
  num_cells_ = sub_size * num_hashes;
  hashes_.reserve(num_hashes);
  for (int i = 0; i < num_hashes; ++i) {
    hashes_.emplace_back(2, SplitMix64Once(seed + 15485863ULL * i));
  }
  cells_.assign(num_cells_, Cell{});
}

uint64_t Iblt::Fingerprint(uint64_t key) const {
  return SplitMix64Once(key ^ seed_ ^ 0xf1a9f1a9f1a9f1a9ULL) | 1;
}

std::vector<uint64_t> Iblt::CellsOf(uint64_t key) const {
  const uint64_t sub_size = num_cells_ / hashes_.size();
  std::vector<uint64_t> cells(hashes_.size());
  for (size_t i = 0; i < hashes_.size(); ++i) {
    cells[i] = i * sub_size + hashes_[i].Bucket(key, sub_size);
  }
  return cells;
}

void Iblt::Insert(uint64_t key, uint64_t value) {
  const uint64_t fp = Fingerprint(key);
  for (uint64_t c : CellsOf(key)) {
    Cell& cell = cells_[c];
    cell.count += 1;
    cell.key_sum ^= key;
    cell.value_sum ^= value;
    cell.check_sum ^= fp;
  }
}

void Iblt::Delete(uint64_t key, uint64_t value) {
  const uint64_t fp = Fingerprint(key);
  for (uint64_t c : CellsOf(key)) {
    Cell& cell = cells_[c];
    cell.count -= 1;
    cell.key_sum ^= key;
    cell.value_sum ^= value;
    cell.check_sum ^= fp;
  }
}

bool Iblt::IsPureCell(const Cell& cell, uint64_t fingerprint) {
  return (cell.count == 1 || cell.count == -1) &&
         cell.check_sum == fingerprint;
}

std::optional<uint64_t> Iblt::Get(uint64_t key) const {
  const uint64_t fp = Fingerprint(key);
  for (uint64_t c : CellsOf(key)) {
    const Cell& cell = cells_[c];
    if (cell.count == 0 && cell.key_sum == 0 && cell.check_sum == 0) {
      return std::nullopt;  // definitely absent
    }
    if ((cell.count == 1 || cell.count == -1) &&
        cell.check_sum == Fingerprint(cell.key_sum)) {
      // Pure cell: holds exactly one key.
      if (cell.key_sum == key && cell.check_sum == fp) {
        return cell.value_sum;
      }
      return std::nullopt;  // pure cell holds some other key => absent
    }
  }
  return std::nullopt;  // unresolvable
}

std::pair<std::vector<Iblt::Entry>, bool> Iblt::ListEntries() const {
  Iblt work = *this;  // peel a scratch copy
  std::vector<Entry> entries;
  std::deque<uint64_t> queue;
  for (uint64_t c = 0; c < work.num_cells_; ++c) queue.push_back(c);

  while (!queue.empty()) {
    const uint64_t c = queue.front();
    queue.pop_front();
    const Cell& cell = work.cells_[c];
    if (cell.count != 1 && cell.count != -1) continue;
    const uint64_t key = cell.key_sum;
    if (cell.check_sum != work.Fingerprint(key)) continue;
    const uint64_t value = cell.value_sum;
    const int sign = cell.count > 0 ? +1 : -1;
    entries.push_back({key, value, sign});
    // Remove the pair from all its cells and requeue them.
    if (sign > 0) {
      work.Delete(key, value);
    } else {
      work.Insert(key, value);
    }
    for (uint64_t other : work.CellsOf(key)) queue.push_back(other);
  }

  bool complete = true;
  for (const Cell& cell : work.cells_) {
    if (cell.count != 0 || cell.key_sum != 0 || cell.check_sum != 0) {
      complete = false;
      break;
    }
  }
  return {std::move(entries), complete};
}

void Iblt::Subtract(const Iblt& other) {
  SKETCH_CHECK_MSG(num_cells_ == other.num_cells_ && seed_ == other.seed_ &&
                       hashes_.size() == other.hashes_.size(),
                   "subtract requires identical geometry and seed");
  for (uint64_t c = 0; c < num_cells_; ++c) {
    cells_[c].count -= other.cells_[c].count;
    cells_[c].key_sum ^= other.cells_[c].key_sum;
    cells_[c].value_sum ^= other.cells_[c].value_sum;
    cells_[c].check_sum ^= other.cells_[c].check_sum;
  }
}

}  // namespace sketch
