#include "sketch/topk_monitor.h"

#include <algorithm>

#include "common/check.h"

namespace sketch {

TopKMonitor::TopKMonitor(uint64_t k, uint64_t sketch_width,
                         uint64_t sketch_depth, uint64_t seed)
    : k_(k), pool_capacity_(4 * k), sketch_(sketch_width, sketch_depth,
                                            seed) {
  SKETCH_CHECK(k >= 1);
  pool_.reserve(pool_capacity_ + 1);
}

void TopKMonitor::Update(const StreamUpdate& update) {
  sketch_.Update(update);
  MaybeAdmit(update.item);
}

void TopKMonitor::UpdateAll(const std::vector<StreamUpdate>& updates) {
  for (const StreamUpdate& u : updates) Update(u);
}

void TopKMonitor::MaybeAdmit(uint64_t item) {
  const int64_t estimate = sketch_.Estimate(item);
  const auto it = pool_.find(item);
  if (it != pool_.end()) {
    it->second = estimate;
    if (estimate <= 0) pool_.erase(it);  // deleted below zero: drop
    return;
  }
  if (estimate <= 0) return;
  pool_.emplace(item, estimate);
  if (pool_.size() > pool_capacity_) ShrinkPool();
}

void TopKMonitor::ShrinkPool() {
  // Refresh cached estimates, then drop the weakest quarter. Amortized:
  // runs once per pool_capacity_/4 admissions.
  std::vector<std::pair<int64_t, uint64_t>> by_estimate;
  by_estimate.reserve(pool_.size());
  for (auto& [item, cached] : pool_) {
    cached = sketch_.Estimate(item);
    by_estimate.emplace_back(cached, item);
  }
  const size_t keep = pool_capacity_ * 3 / 4;
  std::nth_element(by_estimate.begin(), by_estimate.begin() + keep,
                   by_estimate.end(),
                   [](const auto& a, const auto& b) {
                     return a.first > b.first;
                   });
  for (size_t i = keep; i < by_estimate.size(); ++i) {
    pool_.erase(by_estimate[i].second);
  }
}

std::vector<std::pair<uint64_t, int64_t>> TopKMonitor::TopK() {
  std::vector<std::pair<uint64_t, int64_t>> items;
  items.reserve(pool_.size());
  for (auto& [item, cached] : pool_) {
    cached = sketch_.Estimate(item);
    items.emplace_back(item, cached);
  }
  std::sort(items.begin(), items.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  if (items.size() > k_) items.resize(k_);
  return items;
}

}  // namespace sketch
