#include "sketch/count_sketch.h"

#include <algorithm>
#include <cmath>

#include "common/byte_buffer.h"
#include "common/check.h"
#include "common/prng.h"

namespace sketch {

namespace {
constexpr uint64_t kCountSketchMagic = 0x534b43534b543031ULL;  // "SKCSKT01"
}  // namespace

CountSketch::CountSketch(uint64_t width, uint64_t depth, uint64_t seed)
    : width_(width), depth_(depth), seed_(seed) {
  SKETCH_CHECK(width >= 1);
  SKETCH_CHECK(depth >= 1);
  SKETCH_CHECK_MSG(width <= UINT64_MAX / depth,
                   "counter table width * depth overflows");
  bucket_hashes_.reserve(depth);
  sign_hashes_.reserve(depth);
  for (uint64_t j = 0; j < depth; ++j) {
    bucket_hashes_.emplace_back(2, SplitMix64Once(seed * 2 + j));
    sign_hashes_.emplace_back(2, SplitMix64Once(~seed * 2 + j + 0x9e37ULL));
  }
  counters_.assign(width * depth, 0);
}

CountSketch CountSketch::FromErrorBounds(double eps, double delta,
                                         uint64_t seed) {
  SKETCH_CHECK(eps > 0.0 && eps < 1.0);
  SKETCH_CHECK(delta > 0.0 && delta < 1.0);
  const auto width = static_cast<uint64_t>(std::ceil(3.0 / (eps * eps)));
  auto depth = static_cast<uint64_t>(std::ceil(std::log(1.0 / delta)));
  depth = std::max<uint64_t>(depth, 1);
  if (depth % 2 == 0) ++depth;  // odd depth keeps the median a counter value
  return CountSketch(width, depth, seed);
}

void CountSketch::Update(const StreamUpdate& update) {
  for (uint64_t j = 0; j < depth_; ++j) {
    const uint64_t b = bucket_hashes_[j].Bucket(update.item, width_);
    counters_[j * width_ + b] +=
        sign_hashes_[j].Sign(update.item) * update.delta;
  }
}

void CountSketch::UpdateAll(const std::vector<StreamUpdate>& updates) {
  ApplyBatch(updates);
}

void CountSketch::ApplyBatch(UpdateSpan updates) {
  for (const StreamUpdate& u : updates) Update(u);
}

int64_t CountSketch::EstimateRow(uint64_t row, uint64_t item) const {
  const uint64_t b = bucket_hashes_[row].Bucket(item, width_);
  return sign_hashes_[row].Sign(item) * counters_[row * width_ + b];
}

int64_t CountSketch::Estimate(uint64_t item) const {
  std::vector<int64_t> row_estimates(depth_);
  for (uint64_t j = 0; j < depth_; ++j) {
    row_estimates[j] = EstimateRow(j, item);
  }
  const auto mid = row_estimates.begin() + depth_ / 2;
  std::nth_element(row_estimates.begin(), mid, row_estimates.end());
  if (depth_ % 2 == 1) return *mid;
  // Even depth: average the two middle order statistics.
  const int64_t upper = *mid;
  const int64_t lower =
      *std::max_element(row_estimates.begin(), mid);
  return (lower + upper) / 2;
}

int64_t CountSketch::EstimateInnerProduct(const CountSketch& other) const {
  SKETCH_CHECK_MSG(width_ == other.width_ && depth_ == other.depth_ &&
                       seed_ == other.seed_,
                   "inner product requires identical geometry and seed");
  std::vector<int64_t> row_products(depth_);
  for (uint64_t j = 0; j < depth_; ++j) {
    int64_t acc = 0;
    for (uint64_t b = 0; b < width_; ++b) {
      acc += counters_[j * width_ + b] * other.counters_[j * width_ + b];
    }
    row_products[j] = acc;
  }
  const auto mid = row_products.begin() + depth_ / 2;
  std::nth_element(row_products.begin(), mid, row_products.end());
  return *mid;
}

void CountSketch::Merge(const CountSketch& other) {
  SKETCH_CHECK_MSG(width_ == other.width_ && depth_ == other.depth_ &&
                       seed_ == other.seed_,
                   "merge requires identical geometry and seed");
  for (size_t i = 0; i < counters_.size(); ++i) {
    counters_[i] += other.counters_[i];
  }
}


std::vector<uint8_t> CountSketch::Serialize() const {
  std::vector<uint8_t> out;
  out.reserve(40 + counters_.size() * 8);
  AppendU64(kCountSketchMagic, &out);
  AppendU64(width_, &out);
  AppendU64(depth_, &out);
  AppendU64(seed_, &out);
  for (int64_t c : counters_) AppendI64(c, &out);
  return out;
}

CountSketch CountSketch::Deserialize(const std::vector<uint8_t>& bytes) {
  ByteReader reader(bytes);
  SKETCH_CHECK_MSG(reader.ReadU64() == kCountSketchMagic,
                   "not a CountSketch buffer");
  const uint64_t width = reader.ReadU64();
  const uint64_t depth = reader.ReadU64();
  const uint64_t seed = reader.ReadU64();
  SKETCH_CHECK_MSG(width >= 1 && depth >= 1, "invalid CountSketch geometry");
  CheckSerializedSize(
      bytes, /*header_words=*/4,
      CheckedMulU64(width, depth, "CountSketch geometry overflows"),
      "CountSketch buffer size does not match geometry");
  CountSketch sketch(width, depth, seed);
  for (int64_t& c : sketch.counters_) c = reader.ReadI64();
  SKETCH_CHECK_MSG(reader.AtEnd(), "trailing bytes in CountSketch buffer");
  return sketch;
}

}  // namespace sketch
