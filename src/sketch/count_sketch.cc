#include "sketch/count_sketch.h"

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "common/byte_buffer.h"
#include "common/check.h"
#include "common/prng.h"
#include "telemetry/telemetry.h"

namespace sketch {

namespace {
constexpr uint64_t kCountSketchMagic = 0x534b43534b543031ULL;  // "SKCSKT01"
// v2 adds a width-mode word to the header; only written for non-default
// modes so division-mode buffers stay byte-identical to v1.
constexpr uint64_t kCountSketchMagicV2 = 0x534b43534b543032ULL;  // "SKCSKT02"
}  // namespace

CountSketch::CountSketch(uint64_t width, uint64_t depth, uint64_t seed,
                         WidthMode mode)
    : width_(ApplyWidthMode(mode, width)),
      depth_(depth),
      seed_(seed),
      width_mode_(mode),
      bucket_mask_(WidthModeMask(mode, width_)),
      width_div_(width_) {
  SKETCH_CHECK(width >= 1);
  SKETCH_CHECK(depth >= 1);
  SKETCH_CHECK_MSG(width_ <= UINT64_MAX / depth,
                   "counter table width * depth overflows");
  bucket_rows_.reserve(depth);
  sign_rows_.reserve(depth);
  for (uint64_t j = 0; j < depth; ++j) {
    bucket_rows_.emplace_back(KWiseHash(2, SplitMix64Once(seed * 2 + j)));
    sign_rows_.emplace_back(
        KWiseHash(2, SplitMix64Once(~seed * 2 + j + 0x9e37ULL)));
  }
  counters_.assign(width_ * depth, 0);
}

CountSketch CountSketch::FromErrorBounds(double eps, double delta,
                                         uint64_t seed) {
  SKETCH_CHECK(eps > 0.0 && eps < 1.0);
  SKETCH_CHECK(delta > 0.0 && delta < 1.0);
  const auto width = static_cast<uint64_t>(std::ceil(3.0 / (eps * eps)));
  auto depth = static_cast<uint64_t>(std::ceil(std::log(1.0 / delta)));
  depth = std::max<uint64_t>(depth, 1);
  if (depth % 2 == 0) ++depth;  // odd depth keeps the median a counter value
  return CountSketch(width, depth, seed);
}

void CountSketch::Update(const StreamUpdate& update) {
  ops_.AddUpdates(1);
  for (uint64_t j = 0; j < depth_; ++j) {
    const uint64_t b = bucket_rows_[j].BucketOne(update.item, width_div_);
    counters_[j * width_ + b] +=
        sign_rows_[j].SignOne(update.item) * update.delta;
  }
}

void CountSketch::UpdateAll(const std::vector<StreamUpdate>& updates) {
  ApplyBatch(updates);
}

void CountSketch::ApplyBatch(UpdateSpan updates) {
  // Kernelized bulk path (see CountMinSketch::ApplyBatch): per block, each
  // row batch-computes its buckets and signs, then applies the signed
  // deltas contiguously. Addition commutes, so the counter table is
  // bit-identical to per-item Update() calls.
  SKETCH_TRACE_SPAN("count_sketch.apply_batch");
  SKETCH_COUNTER_ADD("sketch.count_sketch.batched_updates", updates.size());
  SKETCH_HISTOGRAM_RECORD("sketch.batch_size", updates.size());
  ops_.AddBatch(updates.size());
  constexpr std::size_t kBlock = 256;
  constexpr std::size_t kPrefetchAhead = 8;
  uint64_t keys[kBlock];
  uint64_t buckets[kBlock];
  const FastDiv64 div = width_div_;  // local copy keeps the magic constant
                                     // register-resident across the row loop
  int64_t signs[kBlock];
  const std::size_t total = updates.size();
  for (std::size_t start = 0; start < total; start += kBlock) {
    const std::size_t n = std::min(kBlock, total - start);
    const StreamUpdate* block = updates.data() + start;
    for (std::size_t i = 0; i < n; ++i) keys[i] = block[i].item;
    for (uint64_t j = 0; j < depth_; ++j) {
      if (width_mode_ == WidthMode::kPow2) {
        bucket_rows_[j].BucketBlockPow2(keys, n, bucket_mask_, buckets);
      } else {
        bucket_rows_[j].BucketBlock(keys, n, div, buckets);
      }
      sign_rows_[j].SignBlock(keys, n, signs);
      int64_t* row = counters_.data() + j * width_;
      for (std::size_t i = 0; i < n; ++i) {
        if (i + kPrefetchAhead < n) {
          __builtin_prefetch(row + buckets[i + kPrefetchAhead], 1, 1);
        }
        row[buckets[i]] += signs[i] * block[i].delta;
      }
    }
  }
}

int64_t CountSketch::EstimateRow(uint64_t row, uint64_t item) const {
  const uint64_t b = bucket_rows_[row].BucketOne(item, width_div_);
  return sign_rows_[row].SignOne(item) * counters_[row * width_ + b];
}

namespace {

/// Median of `row_estimates` (destructively): the middle order statistic,
/// or for even counts the average of the two middle order statistics.
/// Order statistics depend only on the multiset, so callers may fill the
/// vector in any row order and still get a deterministic result.
int64_t MedianOfRows(std::vector<int64_t>& row_estimates) {
  const auto mid = row_estimates.begin() +
                   static_cast<std::ptrdiff_t>(row_estimates.size() / 2);
  std::nth_element(row_estimates.begin(), mid, row_estimates.end());
  if (row_estimates.size() % 2 == 1) return *mid;
  // Even depth: average the two middle order statistics.
  const int64_t upper = *mid;
  const int64_t lower = *std::max_element(row_estimates.begin(), mid);
  return (lower + upper) / 2;
}

}  // namespace

int64_t CountSketch::Estimate(uint64_t item) const {
  std::vector<int64_t> row_estimates(depth_);
  for (uint64_t j = 0; j < depth_; ++j) {
    row_estimates[j] = EstimateRow(j, item);
  }
  return MedianOfRows(row_estimates);
}

void CountSketch::EstimateBatch(const uint64_t* items, std::size_t n,
                                int64_t* out) const {
  // Query-side mirror of ApplyBatch: per block of keys, each row batch-
  // computes buckets and signs, depositing its signed counter into a
  // row-major scratch pane; the per-item median is then taken over the
  // pane's column. Identical row estimates feed the identical median, so
  // out[i] == Estimate(items[i]) exactly.
  SKETCH_TRACE_SPAN("count_sketch.estimate_batch");
  SKETCH_COUNTER_ADD("sketch.count_sketch.batched_estimates", n);
  constexpr std::size_t kBlock = 256;
  uint64_t buckets[kBlock];
  int64_t signs[kBlock];
  const FastDiv64 div = width_div_;
  std::vector<int64_t> pane(depth_ * kBlock);
  std::vector<int64_t> row_estimates(depth_);
  for (std::size_t start = 0; start < n; start += kBlock) {
    const std::size_t block_n = std::min(kBlock, n - start);
    const uint64_t* keys = items + start;
    for (uint64_t j = 0; j < depth_; ++j) {
      if (width_mode_ == WidthMode::kPow2) {
        bucket_rows_[j].BucketBlockPow2(keys, block_n, bucket_mask_, buckets);
      } else {
        bucket_rows_[j].BucketBlock(keys, block_n, div, buckets);
      }
      sign_rows_[j].SignBlock(keys, block_n, signs);
      const int64_t* row = counters_.data() + j * width_;
      int64_t* pane_row = pane.data() + j * kBlock;
      for (std::size_t i = 0; i < block_n; ++i) {
        pane_row[i] = signs[i] * row[buckets[i]];
      }
    }
    for (std::size_t i = 0; i < block_n; ++i) {
      for (uint64_t j = 0; j < depth_; ++j) {
        row_estimates[j] = pane[j * kBlock + i];
      }
      out[start + i] = MedianOfRows(row_estimates);
    }
  }
}

int64_t CountSketch::EstimateInnerProduct(const CountSketch& other) const {
  SKETCH_CHECK_MSG(width_ == other.width_ && depth_ == other.depth_ &&
                       seed_ == other.seed_ &&
                       width_mode_ == other.width_mode_,
                   "inner product requires identical geometry and seed");
  std::vector<int64_t> row_products(depth_);
  for (uint64_t j = 0; j < depth_; ++j) {
    int64_t acc = 0;
    for (uint64_t b = 0; b < width_; ++b) {
      acc += counters_[j * width_ + b] * other.counters_[j * width_ + b];
    }
    row_products[j] = acc;
  }
  const auto mid = row_products.begin() + depth_ / 2;
  std::nth_element(row_products.begin(), mid, row_products.end());
  return *mid;
}

void CountSketch::Merge(const CountSketch& other) {
  SKETCH_CHECK_MSG(width_ == other.width_ && depth_ == other.depth_ &&
                       seed_ == other.seed_ &&
                       width_mode_ == other.width_mode_,
                   "merge requires identical geometry and seed");
  SKETCH_COUNTER_INC("sketch.count_sketch.merges");
  ops_.AddMerge(other.ops_);
  for (size_t i = 0; i < counters_.size(); ++i) {
    counters_[i] += other.counters_[i];
  }
}

uint64_t CountSketch::MemoryFootprintBytes() const {
  uint64_t bytes = sizeof(*this) + counters_.capacity() * sizeof(int64_t) +
                   bucket_rows_.capacity() * sizeof(BlockHasher) +
                   sign_rows_.capacity() * sizeof(BlockHasher);
  for (const BlockHasher& row : bucket_rows_) bytes += row.DynamicMemoryBytes();
  for (const BlockHasher& row : sign_rows_) bytes += row.DynamicMemoryBytes();
  return bytes;
}

StatsSnapshot CountSketch::Introspect() const {
  StatsSnapshot snapshot;
  snapshot.type = "CountSketch";
  snapshot.memory_bytes = MemoryFootprintBytes();
  snapshot.cells = counters_.size();
  snapshot.AddField("width", static_cast<double>(width_));
  snapshot.AddField("depth", static_cast<double>(depth_));
  snapshot.AddField("seed", static_cast<double>(seed_));
  snapshot.AddField("width_mode", static_cast<double>(width_mode_));
  snapshot.occupancy_log2 =
      telemetry::MagnitudeHistogram(counters_.data(), counters_.size());
  // Signed updates can cancel a bucket back to zero, so occupancy is a
  // slight *under*-estimate of load here — still the right live proxy for
  // the collision rate behind the eps*||x||_2 concentration bound
  // [Minton-Price'12].
  const double occupied = telemetry::OccupiedFraction(
      snapshot.occupancy_log2, counters_.size());
  snapshot.AddField("occupied_fraction", occupied);
  const double distinct = telemetry::EstimateDistinctKeys(
      occupied, static_cast<double>(width_));
  snapshot.AddField("estimated_distinct_keys", distinct);
  snapshot.AddField(
      "estimated_collision_rate",
      telemetry::EstimateCollisionRate(distinct,
                                       static_cast<double>(width_)));
  snapshot.AddField("updates", static_cast<double>(ops_.updates()));
  snapshot.AddField("batches", static_cast<double>(ops_.batches()));
  snapshot.AddField("merges", static_cast<double>(ops_.merges()));
  return snapshot;
}

std::vector<uint8_t> CountSketch::Serialize() const {
  std::vector<uint8_t> out;
  out.reserve(48 + counters_.size() * 8);
  // Division-mode buffers keep the v1 layout byte for byte; pow2 sketches
  // write the v2 magic and append the mode word to the header.
  if (width_mode_ == WidthMode::kDivision) {
    AppendU64(kCountSketchMagic, &out);
    AppendU64(width_, &out);
    AppendU64(depth_, &out);
    AppendU64(seed_, &out);
  } else {
    AppendU64(kCountSketchMagicV2, &out);
    AppendU64(width_, &out);
    AppendU64(depth_, &out);
    AppendU64(seed_, &out);
    AppendU64(static_cast<uint64_t>(width_mode_), &out);
  }
  for (int64_t c : counters_) AppendI64(c, &out);
  return out;
}

CountSketch CountSketch::Deserialize(const std::vector<uint8_t>& bytes) {
  ByteReader reader(bytes);
  const uint64_t magic = reader.ReadU64();
  SKETCH_CHECK_MSG(magic == kCountSketchMagic || magic == kCountSketchMagicV2,
                   "not a CountSketch buffer");
  const uint64_t width = reader.ReadU64();
  const uint64_t depth = reader.ReadU64();
  const uint64_t seed = reader.ReadU64();
  SKETCH_CHECK_MSG(width >= 1 && depth >= 1, "invalid CountSketch geometry");
  WidthMode mode = WidthMode::kDivision;
  uint64_t header_words = 4;
  if (magic == kCountSketchMagicV2) {
    const uint64_t mode_word = reader.ReadU64();
    SKETCH_CHECK_MSG(mode_word == static_cast<uint64_t>(WidthMode::kPow2),
                     "invalid CountSketch width mode");
    SKETCH_CHECK_MSG((width & (width - 1)) == 0,
                     "pow2 CountSketch width is not a power of two");
    mode = WidthMode::kPow2;
    header_words = 5;
  }
  CheckSerializedSize(
      bytes, header_words,
      CheckedMulU64(width, depth, "CountSketch geometry overflows"),
      "CountSketch buffer size does not match geometry");
  CountSketch sketch(width, depth, seed, mode);
  for (int64_t& c : sketch.counters_) c = reader.ReadI64();
  SKETCH_CHECK_MSG(reader.AtEnd(), "trailing bytes in CountSketch buffer");
  return sketch;
}

}  // namespace sketch
