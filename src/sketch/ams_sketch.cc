#include "sketch/ams_sketch.h"

#include <algorithm>

#include "common/check.h"
#include "common/prng.h"

namespace sketch {

AmsSketch::AmsSketch(uint64_t width, uint64_t depth, uint64_t seed)
    : width_(width), depth_(depth), seed_(seed) {
  SKETCH_CHECK(width >= 1);
  SKETCH_CHECK(depth >= 1);
  bucket_hashes_.reserve(depth);
  sign_hashes_.reserve(depth);
  for (uint64_t j = 0; j < depth; ++j) {
    bucket_hashes_.emplace_back(2, SplitMix64Once(seed + 31 * j));
    sign_hashes_.emplace_back(4, SplitMix64Once(~seed + 37 * j));
  }
  counters_.assign(width * depth, 0);
}

void AmsSketch::Update(const StreamUpdate& update) {
  for (uint64_t j = 0; j < depth_; ++j) {
    const uint64_t b = bucket_hashes_[j].Bucket(update.item, width_);
    counters_[j * width_ + b] +=
        sign_hashes_[j].Sign(update.item) * update.delta;
  }
}

void AmsSketch::UpdateAll(const std::vector<StreamUpdate>& updates) {
  ApplyBatch(updates);
}

void AmsSketch::ApplyBatch(UpdateSpan updates) {
  for (const StreamUpdate& u : updates) Update(u);
}

double AmsSketch::EstimateF2() const {
  std::vector<double> row_estimates(depth_);
  for (uint64_t j = 0; j < depth_; ++j) {
    double sum = 0.0;
    for (uint64_t b = 0; b < width_; ++b) {
      const double c = static_cast<double>(counters_[j * width_ + b]);
      sum += c * c;
    }
    row_estimates[j] = sum;
  }
  const auto mid = row_estimates.begin() + depth_ / 2;
  std::nth_element(row_estimates.begin(), mid, row_estimates.end());
  return *mid;
}

void AmsSketch::Merge(const AmsSketch& other) {
  SKETCH_CHECK_MSG(width_ == other.width_ && depth_ == other.depth_ &&
                       seed_ == other.seed_,
                   "merge requires identical geometry and seed");
  for (size_t i = 0; i < counters_.size(); ++i) {
    counters_[i] += other.counters_[i];
  }
}

}  // namespace sketch
