#include "sketch/ams_sketch.h"

#include <algorithm>
#include <cstddef>

#include "common/byte_buffer.h"
#include "common/check.h"
#include "common/prng.h"
#include "telemetry/telemetry.h"

namespace sketch {

namespace {
constexpr uint64_t kAmsMagic = 0x534b414d53303031ULL;  // "SKAMS001"
}  // namespace

AmsSketch::AmsSketch(uint64_t width, uint64_t depth, uint64_t seed)
    : width_(width), depth_(depth), seed_(seed), width_div_(width) {
  SKETCH_CHECK(width >= 1);
  SKETCH_CHECK(depth >= 1);
  SKETCH_CHECK_MSG(width <= UINT64_MAX / depth,
                   "counter table width * depth overflows");
  bucket_rows_.reserve(depth);
  sign_rows_.reserve(depth);
  for (uint64_t j = 0; j < depth; ++j) {
    bucket_rows_.emplace_back(KWiseHash(2, SplitMix64Once(seed + 31 * j)));
    sign_rows_.emplace_back(KWiseHash(4, SplitMix64Once(~seed + 37 * j)));
  }
  counters_.assign(width * depth, 0);
}

void AmsSketch::Update(const StreamUpdate& update) {
  ops_.AddUpdates(1);
  for (uint64_t j = 0; j < depth_; ++j) {
    const uint64_t b = bucket_rows_[j].BucketOne(update.item, width_div_);
    counters_[j * width_ + b] +=
        sign_rows_[j].SignOne(update.item) * update.delta;
  }
}

void AmsSketch::UpdateAll(const std::vector<StreamUpdate>& updates) {
  ApplyBatch(updates);
}

void AmsSketch::ApplyBatch(UpdateSpan updates) {
  // Kernelized bulk path (see CountMinSketch::ApplyBatch); the 4-wise sign
  // hash goes through the unrolled k=4 Horner kernel. Bit-identical to
  // per-item Update() because addition commutes.
  SKETCH_TRACE_SPAN("ams.apply_batch");
  SKETCH_COUNTER_ADD("sketch.ams.batched_updates", updates.size());
  SKETCH_HISTOGRAM_RECORD("sketch.batch_size", updates.size());
  ops_.AddBatch(updates.size());
  constexpr std::size_t kBlock = 256;
  constexpr std::size_t kPrefetchAhead = 8;
  uint64_t keys[kBlock];
  uint64_t buckets[kBlock];
  const FastDiv64 div = width_div_;  // local copy keeps the magic constant
                                     // register-resident across the row loop
  int64_t signs[kBlock];
  const std::size_t total = updates.size();
  for (std::size_t start = 0; start < total; start += kBlock) {
    const std::size_t n = std::min(kBlock, total - start);
    const StreamUpdate* block = updates.data() + start;
    for (std::size_t i = 0; i < n; ++i) keys[i] = block[i].item;
    for (uint64_t j = 0; j < depth_; ++j) {
      bucket_rows_[j].BucketBlock(keys, n, div, buckets);
      sign_rows_[j].SignBlock(keys, n, signs);
      int64_t* row = counters_.data() + j * width_;
      for (std::size_t i = 0; i < n; ++i) {
        if (i + kPrefetchAhead < n) {
          __builtin_prefetch(row + buckets[i + kPrefetchAhead], 1, 1);
        }
        row[buckets[i]] += signs[i] * block[i].delta;
      }
    }
  }
}

double AmsSketch::EstimateF2() const {
  std::vector<double> row_estimates(depth_);
  for (uint64_t j = 0; j < depth_; ++j) {
    double sum = 0.0;
    for (uint64_t b = 0; b < width_; ++b) {
      const double c = static_cast<double>(counters_[j * width_ + b]);
      sum += c * c;
    }
    row_estimates[j] = sum;
  }
  const auto mid = row_estimates.begin() + depth_ / 2;
  std::nth_element(row_estimates.begin(), mid, row_estimates.end());
  return *mid;
}

void AmsSketch::Merge(const AmsSketch& other) {
  SKETCH_CHECK_MSG(width_ == other.width_ && depth_ == other.depth_ &&
                       seed_ == other.seed_,
                   "merge requires identical geometry and seed");
  SKETCH_COUNTER_INC("sketch.ams.merges");
  ops_.AddMerge(other.ops_);
  for (size_t i = 0; i < counters_.size(); ++i) {
    counters_[i] += other.counters_[i];
  }
}

uint64_t AmsSketch::MemoryFootprintBytes() const {
  uint64_t bytes = sizeof(*this) + counters_.capacity() * sizeof(int64_t) +
                   bucket_rows_.capacity() * sizeof(BlockHasher) +
                   sign_rows_.capacity() * sizeof(BlockHasher);
  for (const BlockHasher& row : bucket_rows_) bytes += row.DynamicMemoryBytes();
  for (const BlockHasher& row : sign_rows_) bytes += row.DynamicMemoryBytes();
  return bytes;
}

StatsSnapshot AmsSketch::Introspect() const {
  StatsSnapshot snapshot;
  snapshot.type = "AmsSketch";
  snapshot.memory_bytes = MemoryFootprintBytes();
  snapshot.cells = counters_.size();
  snapshot.AddField("width", static_cast<double>(width_));
  snapshot.AddField("depth", static_cast<double>(depth_));
  snapshot.AddField("seed", static_cast<double>(seed_));
  snapshot.occupancy_log2 =
      telemetry::MagnitudeHistogram(counters_.data(), counters_.size());
  // Like Count-Sketch, the random signs can cancel a bucket exactly to
  // zero, so occupancy slightly under-counts load; the F2 variance bound
  // depends on bucket collisions, which this tracks directly.
  const double occupied = telemetry::OccupiedFraction(
      snapshot.occupancy_log2, counters_.size());
  snapshot.AddField("occupied_fraction", occupied);
  const double distinct = telemetry::EstimateDistinctKeys(
      occupied, static_cast<double>(width_));
  snapshot.AddField("estimated_distinct_keys", distinct);
  snapshot.AddField(
      "estimated_collision_rate",
      telemetry::EstimateCollisionRate(distinct,
                                       static_cast<double>(width_)));
  snapshot.AddField("updates", static_cast<double>(ops_.updates()));
  snapshot.AddField("batches", static_cast<double>(ops_.batches()));
  snapshot.AddField("merges", static_cast<double>(ops_.merges()));
  return snapshot;
}

std::vector<uint8_t> AmsSketch::Serialize() const {
  std::vector<uint8_t> out;
  out.reserve(40 + counters_.size() * 8);
  AppendU64(kAmsMagic, &out);
  AppendU64(width_, &out);
  AppendU64(depth_, &out);
  AppendU64(seed_, &out);
  for (int64_t c : counters_) AppendI64(c, &out);
  return out;
}

AmsSketch AmsSketch::Deserialize(const std::vector<uint8_t>& bytes) {
  ByteReader reader(bytes);
  SKETCH_CHECK_MSG(reader.ReadU64() == kAmsMagic, "not an AmsSketch buffer");
  const uint64_t width = reader.ReadU64();
  const uint64_t depth = reader.ReadU64();
  const uint64_t seed = reader.ReadU64();
  SKETCH_CHECK_MSG(width >= 1 && depth >= 1, "invalid AmsSketch geometry");
  CheckSerializedSize(
      bytes, /*header_words=*/4,
      CheckedMulU64(width, depth, "AmsSketch geometry overflows"),
      "AmsSketch buffer size does not match geometry");
  AmsSketch sketch(width, depth, seed);
  for (int64_t& c : sketch.counters_) c = reader.ReadI64();
  SKETCH_CHECK_MSG(reader.AtEnd(), "trailing bytes in AmsSketch buffer");
  return sketch;
}

}  // namespace sketch
