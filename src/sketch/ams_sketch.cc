#include "sketch/ams_sketch.h"

#include <algorithm>

#include "common/byte_buffer.h"
#include "common/check.h"
#include "common/prng.h"

namespace sketch {

namespace {
constexpr uint64_t kAmsMagic = 0x534b414d53303031ULL;  // "SKAMS001"
}  // namespace

AmsSketch::AmsSketch(uint64_t width, uint64_t depth, uint64_t seed)
    : width_(width), depth_(depth), seed_(seed) {
  SKETCH_CHECK(width >= 1);
  SKETCH_CHECK(depth >= 1);
  SKETCH_CHECK_MSG(width <= UINT64_MAX / depth,
                   "counter table width * depth overflows");
  bucket_hashes_.reserve(depth);
  sign_hashes_.reserve(depth);
  for (uint64_t j = 0; j < depth; ++j) {
    bucket_hashes_.emplace_back(2, SplitMix64Once(seed + 31 * j));
    sign_hashes_.emplace_back(4, SplitMix64Once(~seed + 37 * j));
  }
  counters_.assign(width * depth, 0);
}

void AmsSketch::Update(const StreamUpdate& update) {
  for (uint64_t j = 0; j < depth_; ++j) {
    const uint64_t b = bucket_hashes_[j].Bucket(update.item, width_);
    counters_[j * width_ + b] +=
        sign_hashes_[j].Sign(update.item) * update.delta;
  }
}

void AmsSketch::UpdateAll(const std::vector<StreamUpdate>& updates) {
  ApplyBatch(updates);
}

void AmsSketch::ApplyBatch(UpdateSpan updates) {
  for (const StreamUpdate& u : updates) Update(u);
}

double AmsSketch::EstimateF2() const {
  std::vector<double> row_estimates(depth_);
  for (uint64_t j = 0; j < depth_; ++j) {
    double sum = 0.0;
    for (uint64_t b = 0; b < width_; ++b) {
      const double c = static_cast<double>(counters_[j * width_ + b]);
      sum += c * c;
    }
    row_estimates[j] = sum;
  }
  const auto mid = row_estimates.begin() + depth_ / 2;
  std::nth_element(row_estimates.begin(), mid, row_estimates.end());
  return *mid;
}

void AmsSketch::Merge(const AmsSketch& other) {
  SKETCH_CHECK_MSG(width_ == other.width_ && depth_ == other.depth_ &&
                       seed_ == other.seed_,
                   "merge requires identical geometry and seed");
  for (size_t i = 0; i < counters_.size(); ++i) {
    counters_[i] += other.counters_[i];
  }
}

std::vector<uint8_t> AmsSketch::Serialize() const {
  std::vector<uint8_t> out;
  out.reserve(40 + counters_.size() * 8);
  AppendU64(kAmsMagic, &out);
  AppendU64(width_, &out);
  AppendU64(depth_, &out);
  AppendU64(seed_, &out);
  for (int64_t c : counters_) AppendI64(c, &out);
  return out;
}

AmsSketch AmsSketch::Deserialize(const std::vector<uint8_t>& bytes) {
  ByteReader reader(bytes);
  SKETCH_CHECK_MSG(reader.ReadU64() == kAmsMagic, "not an AmsSketch buffer");
  const uint64_t width = reader.ReadU64();
  const uint64_t depth = reader.ReadU64();
  const uint64_t seed = reader.ReadU64();
  SKETCH_CHECK_MSG(width >= 1 && depth >= 1, "invalid AmsSketch geometry");
  CheckSerializedSize(
      bytes, /*header_words=*/4,
      CheckedMulU64(width, depth, "AmsSketch geometry overflows"),
      "AmsSketch buffer size does not match geometry");
  AmsSketch sketch(width, depth, seed);
  for (int64_t& c : sketch.counters_) c = reader.ReadI64();
  SKETCH_CHECK_MSG(reader.AtEnd(), "trailing bytes in AmsSketch buffer");
  return sketch;
}

}  // namespace sketch
