#ifndef SKETCH_SKETCH_BLOOM_FILTER_H_
#define SKETCH_SKETCH_BLOOM_FILTER_H_

#include <cstdint>
#include <vector>

#include "hash/kwise_hash.h"
#include "kernels/block_hasher.h"
#include "kernels/fast_div.h"
#include "sketch/width_mode.h"
#include "stream/update.h"
#include "telemetry/stats.h"

namespace sketch {

/// Bloom filter [FCAB98, BM04]: `num_bits` bits, `num_hashes` hash probes
/// per key. The membership analogue of the §1 hashing process — instead of
/// counting, each key sets its hashed positions; a key "may be present"
/// iff all its positions are set.
///
/// False-positive rate after n inserts: approximately
/// (1 - e^{-kn/m})^k, minimized at k = (m/n) ln 2 hash functions.
class BloomFilter {
 public:
  /// In `WidthMode::kPow2` the requested bit count is rounded up to the
  /// next power of two (num_bits() reports the rounded value; the FPR
  /// formulas already use it) and the probe reduction becomes a mask.
  BloomFilter(uint64_t num_bits, int num_hashes, uint64_t seed,
              WidthMode mode = WidthMode::kDivision);

  /// Sizes for an expected `expected_keys` insertions at the target
  /// false-positive rate, with the optimal hash count.
  static BloomFilter FromFalsePositiveRate(uint64_t expected_keys,
                                           double target_fpr, uint64_t seed);

  /// Inserts a key.
  void Insert(uint64_t key);

  /// Batched entry point: inserts `update.item` for every update in the
  /// block (membership is delta-agnostic — a Bloom filter only records
  /// presence). Lets the sharded ingestion engine (`src/parallel`) drive
  /// Bloom filters through the same ApplyBatch interface as the counting
  /// sketches.
  void ApplyBatch(UpdateSpan updates);

  /// Returns false if the key was definitely never inserted; true means
  /// "possibly present" (false positives at the configured rate).
  bool MayContain(uint64_t key) const;

  /// Merges a filter with identical geometry and seed (bitwise OR).
  void Merge(const BloomFilter& other);

  /// Theoretical false-positive rate after `inserted_keys` distinct
  /// insertions.
  double TheoreticalFpr(uint64_t inserted_keys) const;

  /// Actual bit-array size (already rounded in kPow2 mode).
  uint64_t num_bits() const { return num_bits_; }
  int num_hashes() const { return static_cast<int>(probes_.size()); }
  uint64_t seed() const { return seed_; }
  WidthMode width_mode() const { return width_mode_; }

  /// Fraction of bits currently set (diagnostic).
  double FillRatio() const;

  /// Serializes geometry, seed, and the bit array to a portable
  /// little-endian byte buffer.
  std::vector<uint8_t> Serialize() const;

  /// Reconstructs a filter from Serialize() output; aborts on malformed
  /// buffers.
  static BloomFilter Deserialize(const std::vector<uint8_t>& bytes);

  /// Resident memory of this filter: the object plus every owned heap
  /// allocation (bit array, probe hashers).
  uint64_t MemoryFootprintBytes() const;

  /// Structured self-description (see CountMinSketch::Introspect).
  StatsSnapshot Introspect() const;

  /// Human-readable Introspect() dump.
  std::string DebugString() const { return Introspect().DebugString(); }

 private:
  uint64_t num_bits_;
  uint64_t seed_;
  WidthMode width_mode_;
  uint64_t bit_mask_;                // num_bits_ - 1 in kPow2 mode, else 0
  FastDiv64 bits_div_;               // divide-free `% num_bits_`; equals
                                     // the mask for pow2 bit counts
  std::vector<BlockHasher> probes_;  // one 2-wise hash per probe
  std::vector<uint64_t> bits_;       // packed, 64 bits per word
  SketchOpCounters ops_;  // lifetime insert/merge counts (stub when off)
};

}  // namespace sketch

#endif  // SKETCH_SKETCH_BLOOM_FILTER_H_
