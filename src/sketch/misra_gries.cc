#include "sketch/misra_gries.h"

#include <algorithm>

#include "common/check.h"

namespace sketch {

MisraGries::MisraGries(uint64_t capacity) : capacity_(capacity) {
  SKETCH_CHECK(capacity >= 1);
  counters_.reserve(capacity + 1);
}

void MisraGries::Update(uint64_t item, uint64_t count) {
  auto it = counters_.find(item);
  if (it != counters_.end()) {
    it->second += static_cast<int64_t>(count);
    return;
  }
  if (counters_.size() < capacity_) {
    counters_.emplace(item, static_cast<int64_t>(count));
    return;
  }
  // Table full: decrement all counters by the largest amount that keeps
  // them nonnegative, bounded by `count`; insert the remainder if any.
  int64_t min_counter = static_cast<int64_t>(count);
  for (const auto& [key, c] : counters_) min_counter = std::min(min_counter, c);
  const int64_t dec = min_counter;
  for (auto iter = counters_.begin(); iter != counters_.end();) {
    iter->second -= dec;
    if (iter->second == 0) {
      iter = counters_.erase(iter);
    } else {
      ++iter;
    }
  }
  const int64_t remainder = static_cast<int64_t>(count) - dec;
  if (remainder > 0 && counters_.size() < capacity_) {
    counters_.emplace(item, remainder);
  }
}

int64_t MisraGries::Estimate(uint64_t item) const {
  const auto it = counters_.find(item);
  return it == counters_.end() ? 0 : it->second;
}

std::vector<uint64_t> MisraGries::ItemsAbove(int64_t threshold) const {
  std::vector<uint64_t> items;
  for (const auto& [item, c] : counters_) {
    if (c >= threshold) items.push_back(item);
  }
  std::sort(items.begin(), items.end());
  return items;
}

}  // namespace sketch
