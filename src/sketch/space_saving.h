#ifndef SKETCH_SKETCH_SPACE_SAVING_H_
#define SKETCH_SKETCH_SPACE_SAVING_H_

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

namespace sketch {

/// SpaceSaving (Metwally et al.): counter-based top-k algorithm. Keeps
/// `capacity` counters; an unseen item replaces the current minimum
/// counter and inherits its value (+1), so estimates *overestimate* by at
/// most the smallest tracked counter.
///
/// Guarantee (insert-only): count(item) <= Estimate(item) <= count(item) +
/// N/capacity, and every item with frequency > N/capacity is tracked.
/// Included as the strongest counter-based baseline for E2.
class SpaceSaving {
 public:
  explicit SpaceSaving(uint64_t capacity);

  /// Processes one occurrence of `item` (cash-register model only).
  void Update(uint64_t item, uint64_t count = 1);

  /// Upper-bound estimate (0 if not tracked — only possible before the
  /// table fills).
  int64_t Estimate(uint64_t item) const;

  /// Maximum possible overestimation for `item` (the inherited error
  /// bound); 0 for items that were never evicted.
  int64_t ErrorBound(uint64_t item) const;

  /// Tracked items with estimate >= threshold, sorted by item id.
  std::vector<uint64_t> ItemsAbove(int64_t threshold) const;

  /// The k tracked items with largest estimates.
  std::vector<uint64_t> TopK(uint64_t k) const;

  uint64_t capacity() const { return capacity_; }
  uint64_t TrackedCount() const { return entries_.size(); }

 private:
  struct Entry {
    int64_t count = 0;
    int64_t error = 0;  // value inherited at takeover
    // Iterator into by_count_ for O(log n) updates.
    std::multimap<int64_t, uint64_t>::iterator pos;
  };

  uint64_t capacity_;
  std::unordered_map<uint64_t, Entry> entries_;
  std::multimap<int64_t, uint64_t> by_count_;  // count -> item
};

}  // namespace sketch

#endif  // SKETCH_SKETCH_SPACE_SAVING_H_
