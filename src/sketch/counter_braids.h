#ifndef SKETCH_SKETCH_COUNTER_BRAIDS_H_
#define SKETCH_SKETCH_COUNTER_BRAIDS_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "hash/kwise_hash.h"

namespace sketch {

/// Counter Braids [LMP+08] (survey §2's networking cousin of compressed
/// sensing): a two-layer braided counter architecture for per-flow traffic
/// measurement. Layer 1 holds many *shallow* counters (a few bits each);
/// when one overflows, the overflow is counted — again by hashing — in a
/// smaller layer of deep counters. Flow counts are recovered offline by
/// iterative message passing over the bipartite flow/counter graph,
/// exactly the sparse-recovery-over-a-sparse-matrix structure of §2.
///
/// Space: m1 * bits1 + m2 * 64 bits for n flows, typically well under the
/// 64 bits/flow of exact counting. Decoding needs the flow id list (flow
/// ids are collected separately in the original system, e.g., at flow
/// setup), and succeeds exactly w.h.p. when the braid is sized above the
/// decoding threshold (~ m1 > 2n / bits-dependent constant).
class CounterBraids {
 public:
  struct Options {
    uint64_t layer1_counters = 1 << 14;  ///< m1 shallow counters
    int layer1_bits = 8;                 ///< bit width of layer-1 counters
    uint64_t layer2_counters = 1 << 10;  ///< m2 deep (64-bit) counters
    int hashes_per_flow = 3;             ///< d1: layer-1 cells per flow
    int hashes_per_overflow = 3;         ///< d2: layer-2 cells per counter
    uint64_t seed = 1;
  };

  explicit CounterBraids(const Options& options);

  /// Records `count` packets of `flow`. O(d1), plus O(d2) per overflow.
  void Update(uint64_t flow, uint64_t count = 1);

  /// Result of offline decoding.
  struct DecodeResult {
    std::unordered_map<uint64_t, uint64_t> counts;  ///< flow -> count
    bool exact = false;   ///< true iff every flow's bounds met (unique sol.)
    int iterations = 0;   ///< message-passing iterations used
  };

  /// Recovers every flow's count by two-stage message passing: first the
  /// layer-1 overflow counts from layer 2, then the flow counts from the
  /// restored layer-1 values. `flows` must contain every flow that was
  /// updated (extra never-seen flows are fine — they decode to 0).
  DecodeResult Decode(const std::vector<uint64_t>& flows,
                      int max_iterations = 200) const;

  /// Total size in bits (the space the paper's tables report).
  uint64_t SizeInBits() const;

  const Options& options() const { return options_; }

 private:
  std::vector<uint64_t> FlowCells(uint64_t flow) const;
  std::vector<uint64_t> OverflowCells(uint64_t counter_index) const;

  Options options_;
  uint64_t layer1_mask_;  // 2^bits1 - 1
  std::vector<uint64_t> layer1_;  // stores low bits only
  std::vector<uint64_t> layer2_;  // deep counters
  std::vector<KWiseHash> flow_hashes_;
  std::vector<KWiseHash> overflow_hashes_;
};

/// One bipartite-graph recovery instance: variable v participates in
/// counters `edges[v]`, each counter j has total `totals[j]`; every
/// variable is a nonnegative integer. Solved by iterative bound
/// tightening (the Counter Braids message-passing decoder). Exposed for
/// reuse and direct testing.
struct BraidDecodeOutput {
  std::vector<uint64_t> values;
  bool exact = false;
  int iterations = 0;
};
BraidDecodeOutput SolveBraid(const std::vector<std::vector<uint64_t>>& edges,
                             const std::vector<uint64_t>& totals,
                             int max_iterations);

}  // namespace sketch

#endif  // SKETCH_SKETCH_COUNTER_BRAIDS_H_
