#include "sketch/space_saving.h"

#include <algorithm>

#include "common/check.h"

namespace sketch {

SpaceSaving::SpaceSaving(uint64_t capacity) : capacity_(capacity) {
  SKETCH_CHECK(capacity >= 1);
}

void SpaceSaving::Update(uint64_t item, uint64_t count) {
  const auto delta = static_cast<int64_t>(count);
  auto it = entries_.find(item);
  if (it != entries_.end()) {
    Entry& e = it->second;
    by_count_.erase(e.pos);
    e.count += delta;
    e.pos = by_count_.emplace(e.count, item);
    return;
  }
  if (entries_.size() < capacity_) {
    Entry e;
    e.count = delta;
    e.error = 0;
    e.pos = by_count_.emplace(e.count, item);
    entries_.emplace(item, e);
    return;
  }
  // Evict the minimum-count entry; the newcomer inherits its count.
  const auto min_it = by_count_.begin();
  const int64_t min_count = min_it->first;
  const uint64_t victim = min_it->second;
  by_count_.erase(min_it);
  entries_.erase(victim);
  Entry e;
  e.count = min_count + delta;
  e.error = min_count;
  e.pos = by_count_.emplace(e.count, item);
  entries_.emplace(item, e);
}

int64_t SpaceSaving::Estimate(uint64_t item) const {
  const auto it = entries_.find(item);
  return it == entries_.end() ? 0 : it->second.count;
}

int64_t SpaceSaving::ErrorBound(uint64_t item) const {
  const auto it = entries_.find(item);
  return it == entries_.end() ? 0 : it->second.error;
}

std::vector<uint64_t> SpaceSaving::ItemsAbove(int64_t threshold) const {
  std::vector<uint64_t> items;
  for (const auto& [item, e] : entries_) {
    if (e.count >= threshold) items.push_back(item);
  }
  std::sort(items.begin(), items.end());
  return items;
}

std::vector<uint64_t> SpaceSaving::TopK(uint64_t k) const {
  std::vector<uint64_t> items;
  items.reserve(k);
  for (auto it = by_count_.rbegin(); it != by_count_.rend() && items.size() < k;
       ++it) {
    items.push_back(it->second);
  }
  return items;
}

}  // namespace sketch
