#ifndef SKETCH_SKETCH_RANGE_UPDATE_COUNT_MIN_H_
#define SKETCH_SKETCH_RANGE_UPDATE_COUNT_MIN_H_

#include <cstdint>
#include <vector>

#include "sketch/count_min.h"

namespace sketch {

/// Count-Min with *range updates* (cf. the histogram-maintenance setting
/// of [GGI+02b]): `UpdateRange(lo, hi, delta)` adds `delta` to the count
/// of every item in [lo, hi] using O(log n) sketch updates instead of
/// O(hi - lo) — the dual of DyadicCountMin, which has point updates and
/// range queries.
///
/// Mechanics: the range decomposes into O(log n) canonical dyadic nodes;
/// a node at level l receives `delta` in the level-l sketch, meaning
/// "every item under this node gained delta". A point query sums, over
/// levels, the estimate of the item's ancestor at that level. Each level
/// only overestimates (strict-turnstile Count-Min), so the sum
/// overestimates by at most eps * (total update mass) * levels w.h.p.
class RangeUpdateCountMin {
 public:
  /// \param log_universe  items live in [0, 2^log_universe); <= 40.
  RangeUpdateCountMin(int log_universe, uint64_t width, uint64_t depth,
                      uint64_t seed);

  /// Adds `delta` to every item in [lo, hi] (inclusive). O(log n * depth).
  void UpdateRange(uint64_t lo, uint64_t hi, int64_t delta);

  /// Point update (a range of one).
  void Update(uint64_t item, int64_t delta) {
    UpdateRange(item, item, delta);
  }

  /// Estimated count of `item`; never underestimates in the strict
  /// turnstile model.
  int64_t Estimate(uint64_t item) const;

  /// Total per-item mass added across all updates (exact):
  /// sum over updates of delta * (range length).
  int64_t TotalMass() const { return total_mass_; }

  int log_universe() const { return log_universe_; }
  uint64_t SizeInCounters() const;

 private:
  int log_universe_;
  int64_t total_mass_ = 0;
  // levels_[l] sketches canonical nodes of level l (level 0 = root).
  std::vector<CountMinSketch> levels_;
};

}  // namespace sketch

#endif  // SKETCH_SKETCH_RANGE_UPDATE_COUNT_MIN_H_
