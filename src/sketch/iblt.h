#ifndef SKETCH_SKETCH_IBLT_H_
#define SKETCH_SKETCH_IBLT_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "hash/kwise_hash.h"

namespace sketch {

/// Invertible Bloom Lookup Table [GM11]: a Bloom-filter-shaped structure
/// that supports *listing* its entire contents. Each of `num_cells` cells
/// keeps (count, keySum, valueSum, keyCheckSum); a key/value pair is XOR/
/// sum-folded into `num_hashes` cells.
///
/// Listing works by "peeling": a cell with count == ±1 and a consistent
/// checksum holds exactly one pair, which can be extracted and removed
/// from its other cells, potentially exposing new singletons. With 3
/// hashes, peeling succeeds w.h.p. when num_cells >= ~1.23 * #pairs — the
/// sharp threshold probed by experiment E12.
///
/// The structure is a linear sketch over (key, value) multisets: deletes
/// cancel inserts exactly, and two IBLTs can be subtracted to list the
/// symmetric difference of two sets (the set-reconciliation use case).
class Iblt {
 public:
  Iblt(uint64_t num_cells, int num_hashes, uint64_t seed);

  /// Inserts a key/value pair.
  void Insert(uint64_t key, uint64_t value);

  /// Deletes a key/value pair (exact inverse of Insert).
  void Delete(uint64_t key, uint64_t value);

  /// Looks up the value of `key`. Returns nullopt if the key is
  /// definitely absent or cannot be resolved (every probed cell is
  /// multi-occupied).
  std::optional<uint64_t> Get(uint64_t key) const;

  /// A recovered key/value pair, with the sign of its multiplicity
  /// (negative means it was deleted more often than inserted — possible
  /// after subtraction).
  struct Entry {
    uint64_t key = 0;
    uint64_t value = 0;
    int sign = +1;
  };

  /// Attempts to list all stored pairs by peeling.
  /// \returns (entries, complete): `complete` is true iff the table was
  /// fully drained — only then is the listing guaranteed exhaustive.
  std::pair<std::vector<Entry>, bool> ListEntries() const;

  /// Cell-wise subtraction: after a.Subtract(b), listing yields the
  /// symmetric difference (entries unique to a with sign +1, unique to b
  /// with sign -1). Requires identical geometry and seed.
  void Subtract(const Iblt& other);

  uint64_t num_cells() const { return num_cells_; }
  int num_hashes() const { return static_cast<int>(hashes_.size()); }

 private:
  struct Cell {
    int64_t count = 0;
    uint64_t key_sum = 0;    // XOR of keys
    uint64_t value_sum = 0;  // XOR of values
    uint64_t check_sum = 0;  // XOR of key fingerprints
  };

  /// Fingerprint used to verify that a count==±1 cell is a true singleton.
  uint64_t Fingerprint(uint64_t key) const;
  std::vector<uint64_t> CellsOf(uint64_t key) const;
  static bool IsPureCell(const Cell& cell, uint64_t fingerprint);

  uint64_t num_cells_;
  uint64_t seed_;
  std::vector<KWiseHash> hashes_;
  std::vector<Cell> cells_;
};

}  // namespace sketch

#endif  // SKETCH_SKETCH_IBLT_H_
