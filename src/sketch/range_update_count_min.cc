#include "sketch/range_update_count_min.h"

#include <algorithm>

#include "common/check.h"
#include "common/prng.h"

namespace sketch {

RangeUpdateCountMin::RangeUpdateCountMin(int log_universe, uint64_t width,
                                         uint64_t depth, uint64_t seed)
    : log_universe_(log_universe) {
  SKETCH_CHECK(log_universe >= 1 && log_universe <= 40);
  levels_.reserve(log_universe + 1);
  for (int l = 0; l <= log_universe; ++l) {
    levels_.emplace_back(width, depth, SplitMix64Once(seed + 271 * l));
  }
}

void RangeUpdateCountMin::UpdateRange(uint64_t lo, uint64_t hi,
                                      int64_t delta) {
  SKETCH_CHECK(lo <= hi);
  SKETCH_CHECK(hi < (1ULL << log_universe_));
  total_mass_ += delta * static_cast<int64_t>(hi - lo + 1);
  // Canonical dyadic decomposition (same walk as DyadicCountMin's
  // RangeSum, but writing instead of reading).
  uint64_t cur = lo;
  while (true) {
    int s = (cur == 0) ? log_universe_
                       : std::min<int>(log_universe_, __builtin_ctzll(cur));
    while (s > 0 && cur + (1ULL << s) - 1 > hi) --s;
    const int level = log_universe_ - s;
    levels_[level].Update({cur >> s, delta});
    const uint64_t block = 1ULL << s;
    if (hi - cur < block) break;  // cur + block - 1 == hi handled below
    if (cur + block - 1 == hi) break;
    cur += block;
  }
}

int64_t RangeUpdateCountMin::Estimate(uint64_t item) const {
  SKETCH_CHECK(item < (1ULL << log_universe_));
  int64_t total = 0;
  for (int l = 0; l <= log_universe_; ++l) {
    const uint64_t ancestor = item >> (log_universe_ - l);
    total += levels_[l].Estimate(ancestor);
  }
  return total;
}

uint64_t RangeUpdateCountMin::SizeInCounters() const {
  uint64_t total = 0;
  for (const CountMinSketch& s : levels_) total += s.SizeInCounters();
  return total;
}

}  // namespace sketch
