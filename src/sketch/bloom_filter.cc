#include "sketch/bloom_filter.h"

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "common/byte_buffer.h"
#include "common/check.h"
#include "common/prng.h"
#include "telemetry/telemetry.h"

namespace sketch {

namespace {
constexpr uint64_t kBloomMagic = 0x534b424c4f4f4d31ULL;  // "SKBLOOM1"
// v2 adds a width-mode word to the header; only written for non-default
// modes so division-mode buffers stay byte-identical to v1.
constexpr uint64_t kBloomMagicV2 = 0x534b424c4f4f4d32ULL;  // "SKBLOOM2"
}  // namespace

BloomFilter::BloomFilter(uint64_t num_bits, int num_hashes, uint64_t seed,
                         WidthMode mode)
    : num_bits_(ApplyWidthMode(mode, num_bits)),
      seed_(seed),
      width_mode_(mode),
      bit_mask_(WidthModeMask(mode, num_bits_)),
      bits_div_(num_bits_) {
  SKETCH_CHECK(num_bits >= 1);
  SKETCH_CHECK(num_hashes >= 1);
  probes_.reserve(static_cast<std::size_t>(num_hashes));
  for (int i = 0; i < num_hashes; ++i) {
    probes_.emplace_back(KWiseHash(2, SplitMix64Once(seed + 7919 * i)));
  }
  bits_.assign((num_bits_ + 63) / 64, 0);
}

BloomFilter BloomFilter::FromFalsePositiveRate(uint64_t expected_keys,
                                               double target_fpr,
                                               uint64_t seed) {
  SKETCH_CHECK(expected_keys >= 1);
  SKETCH_CHECK(target_fpr > 0.0 && target_fpr < 1.0);
  const double ln2 = std::log(2.0);
  const double bits_per_key = -std::log(target_fpr) / (ln2 * ln2);
  const auto num_bits = static_cast<uint64_t>(
      std::ceil(bits_per_key * static_cast<double>(expected_keys)));
  const int num_hashes =
      std::max(1, static_cast<int>(std::round(bits_per_key * ln2)));
  return BloomFilter(num_bits, num_hashes, seed);
}

void BloomFilter::Insert(uint64_t key) {
  ops_.AddUpdates(1);
  for (const BlockHasher& h : probes_) {
    const uint64_t bit = h.BucketOne(key, bits_div_);
    bits_[bit >> 6] |= (1ULL << (bit & 63));
  }
}

bool BloomFilter::MayContain(uint64_t key) const {
  for (const BlockHasher& h : probes_) {
    const uint64_t bit = h.BucketOne(key, bits_div_);
    if (!(bits_[bit >> 6] & (1ULL << (bit & 63)))) return false;
  }
  return true;
}

void BloomFilter::ApplyBatch(UpdateSpan updates) {
  // Kernelized bulk path: per block, each probe hash batch-computes its bit
  // positions and sets them contiguously. Bitwise OR commutes, so the bit
  // array is identical to per-item Insert() calls.
  SKETCH_TRACE_SPAN("bloom.apply_batch");
  SKETCH_COUNTER_ADD("sketch.bloom.batched_updates", updates.size());
  SKETCH_HISTOGRAM_RECORD("sketch.batch_size", updates.size());
  ops_.AddBatch(updates.size());
  constexpr std::size_t kBlock = 256;
  uint64_t keys[kBlock];
  uint64_t positions[kBlock];
  const std::size_t total = updates.size();
  uint64_t* bits = bits_.data();
  const FastDiv64 div = bits_div_;  // local copy: the bit stores below
                                    // cannot alias a stack value, so the
                                    // magic constant stays in registers
  for (std::size_t start = 0; start < total; start += kBlock) {
    const std::size_t n = std::min(kBlock, total - start);
    const StreamUpdate* block = updates.data() + start;
    for (std::size_t i = 0; i < n; ++i) keys[i] = block[i].item;
    for (const BlockHasher& h : probes_) {
      // Bit positions are staged through a scratch block (rather than
      // fusing the store into the hash loop) so the probe hash goes
      // through the dispatched SIMD bucket kernels like the counting
      // sketches' rows do; the stores stay a separate cheap sweep.
      if (width_mode_ == WidthMode::kPow2) {
        h.BucketBlockPow2(keys, n, bit_mask_, positions);
      } else {
        h.BucketBlock(keys, n, div, positions);
      }
      for (std::size_t i = 0; i < n; ++i) {
        const uint64_t bit = positions[i];
        bits[bit >> 6] |= (1ULL << (bit & 63));
      }
    }
  }
}

void BloomFilter::Merge(const BloomFilter& other) {
  SKETCH_CHECK_MSG(num_bits_ == other.num_bits_ && seed_ == other.seed_ &&
                       probes_.size() == other.probes_.size() &&
                       width_mode_ == other.width_mode_,
                   "merge requires identical geometry and seed");
  SKETCH_COUNTER_INC("sketch.bloom.merges");
  ops_.AddMerge(other.ops_);
  for (size_t i = 0; i < bits_.size(); ++i) bits_[i] |= other.bits_[i];
}

double BloomFilter::TheoreticalFpr(uint64_t inserted_keys) const {
  const double k = static_cast<double>(probes_.size());
  const double exponent = -k * static_cast<double>(inserted_keys) /
                          static_cast<double>(num_bits_);
  return std::pow(1.0 - std::exp(exponent), k);
}

double BloomFilter::FillRatio() const {
  uint64_t set = 0;
  for (uint64_t word : bits_) set += __builtin_popcountll(word);
  return static_cast<double>(set) / static_cast<double>(num_bits_);
}

uint64_t BloomFilter::MemoryFootprintBytes() const {
  uint64_t bytes = sizeof(*this) + bits_.capacity() * sizeof(uint64_t) +
                   probes_.capacity() * sizeof(BlockHasher);
  for (const BlockHasher& h : probes_) bytes += h.DynamicMemoryBytes();
  return bytes;
}

StatsSnapshot BloomFilter::Introspect() const {
  StatsSnapshot snapshot;
  snapshot.type = "BloomFilter";
  snapshot.memory_bytes = MemoryFootprintBytes();
  snapshot.cells = num_bits_;
  snapshot.AddField("num_bits", static_cast<double>(num_bits_));
  snapshot.AddField("num_hashes", static_cast<double>(probes_.size()));
  snapshot.AddField("seed", static_cast<double>(seed_));
  snapshot.AddField("width_mode", static_cast<double>(width_mode_));
  // Bits are 0/1, so the magnitude histogram degenerates to two buckets:
  // [0] = clear bits, [1] = set bits.
  uint64_t set = 0;
  for (uint64_t word : bits_) {
    set += static_cast<uint64_t>(__builtin_popcountll(word));
  }
  snapshot.occupancy_log2 = {num_bits_ - set, set};
  const double fill = static_cast<double>(set) /
                      static_cast<double>(num_bits_);
  snapshot.AddField("fill_ratio", fill);
  // Invert fill = 1 - (1 - 1/m)^{kn} ≈ 1 - e^{-kn/m} for n, the number of
  // distinct keys inserted; the current false-positive rate is fill^k.
  const double k = static_cast<double>(probes_.size());
  const double m = static_cast<double>(num_bits_);
  snapshot.AddField("estimated_distinct_keys",
                    fill >= 1.0 ? m / k : -(m / k) * std::log1p(-fill));
  snapshot.AddField("current_fpr", std::pow(fill, k));
  snapshot.AddField("updates", static_cast<double>(ops_.updates()));
  snapshot.AddField("batches", static_cast<double>(ops_.batches()));
  snapshot.AddField("merges", static_cast<double>(ops_.merges()));
  return snapshot;
}

std::vector<uint8_t> BloomFilter::Serialize() const {
  std::vector<uint8_t> out;
  out.reserve(48 + bits_.size() * 8);
  // Division-mode buffers keep the v1 layout byte for byte; pow2 filters
  // write the v2 magic and append the mode word to the header.
  if (width_mode_ == WidthMode::kDivision) {
    AppendU64(kBloomMagic, &out);
    AppendU64(num_bits_, &out);
    AppendU64(static_cast<uint64_t>(probes_.size()), &out);
    AppendU64(seed_, &out);
  } else {
    AppendU64(kBloomMagicV2, &out);
    AppendU64(num_bits_, &out);
    AppendU64(static_cast<uint64_t>(probes_.size()), &out);
    AppendU64(seed_, &out);
    AppendU64(static_cast<uint64_t>(width_mode_), &out);
  }
  for (uint64_t word : bits_) AppendU64(word, &out);
  return out;
}

BloomFilter BloomFilter::Deserialize(const std::vector<uint8_t>& bytes) {
  ByteReader reader(bytes);
  const uint64_t magic = reader.ReadU64();
  SKETCH_CHECK_MSG(magic == kBloomMagic || magic == kBloomMagicV2,
                   "not a BloomFilter buffer");
  const uint64_t num_bits = reader.ReadU64();
  const uint64_t num_hashes_word = reader.ReadU64();
  const uint64_t seed = reader.ReadU64();
  SKETCH_CHECK_MSG(num_bits >= 1 && num_bits <= UINT64_MAX - 63,
                   "invalid BloomFilter bit count");
  SKETCH_CHECK_MSG(num_hashes_word >= 1 && num_hashes_word <= 1024,
                   "invalid BloomFilter hash count");
  WidthMode mode = WidthMode::kDivision;
  uint64_t header_words = 4;
  if (magic == kBloomMagicV2) {
    const uint64_t mode_word = reader.ReadU64();
    SKETCH_CHECK_MSG(mode_word == static_cast<uint64_t>(WidthMode::kPow2),
                     "invalid BloomFilter width mode");
    SKETCH_CHECK_MSG((num_bits & (num_bits - 1)) == 0,
                     "pow2 BloomFilter bit count is not a power of two");
    mode = WidthMode::kPow2;
    header_words = 5;
  }
  CheckSerializedSize(bytes, header_words, (num_bits + 63) / 64,
                      "BloomFilter buffer size does not match geometry");
  BloomFilter filter(num_bits, static_cast<int>(num_hashes_word), seed,
                     mode);
  for (uint64_t& word : filter.bits_) word = reader.ReadU64();
  SKETCH_CHECK_MSG(reader.AtEnd(), "trailing bytes in BloomFilter buffer");
  return filter;
}

}  // namespace sketch
