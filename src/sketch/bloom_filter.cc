#include "sketch/bloom_filter.h"

#include <cmath>

#include "common/byte_buffer.h"
#include "common/check.h"
#include "common/prng.h"

namespace sketch {

namespace {
constexpr uint64_t kBloomMagic = 0x534b424c4f4f4d31ULL;  // "SKBLOOM1"
}  // namespace

BloomFilter::BloomFilter(uint64_t num_bits, int num_hashes, uint64_t seed)
    : num_bits_(num_bits), seed_(seed) {
  SKETCH_CHECK(num_bits >= 1);
  SKETCH_CHECK(num_hashes >= 1);
  hashes_.reserve(num_hashes);
  for (int i = 0; i < num_hashes; ++i) {
    hashes_.emplace_back(2, SplitMix64Once(seed + 7919 * i));
  }
  bits_.assign((num_bits + 63) / 64, 0);
}

BloomFilter BloomFilter::FromFalsePositiveRate(uint64_t expected_keys,
                                               double target_fpr,
                                               uint64_t seed) {
  SKETCH_CHECK(expected_keys >= 1);
  SKETCH_CHECK(target_fpr > 0.0 && target_fpr < 1.0);
  const double ln2 = std::log(2.0);
  const double bits_per_key = -std::log(target_fpr) / (ln2 * ln2);
  const auto num_bits = static_cast<uint64_t>(
      std::ceil(bits_per_key * static_cast<double>(expected_keys)));
  const int num_hashes =
      std::max(1, static_cast<int>(std::round(bits_per_key * ln2)));
  return BloomFilter(num_bits, num_hashes, seed);
}

void BloomFilter::Insert(uint64_t key) {
  for (const KWiseHash& h : hashes_) {
    const uint64_t bit = h.Bucket(key, num_bits_);
    bits_[bit >> 6] |= (1ULL << (bit & 63));
  }
}

bool BloomFilter::MayContain(uint64_t key) const {
  for (const KWiseHash& h : hashes_) {
    const uint64_t bit = h.Bucket(key, num_bits_);
    if (!(bits_[bit >> 6] & (1ULL << (bit & 63)))) return false;
  }
  return true;
}

void BloomFilter::ApplyBatch(UpdateSpan updates) {
  for (const StreamUpdate& u : updates) Insert(u.item);
}

void BloomFilter::Merge(const BloomFilter& other) {
  SKETCH_CHECK_MSG(num_bits_ == other.num_bits_ && seed_ == other.seed_ &&
                       hashes_.size() == other.hashes_.size(),
                   "merge requires identical geometry and seed");
  for (size_t i = 0; i < bits_.size(); ++i) bits_[i] |= other.bits_[i];
}

double BloomFilter::TheoreticalFpr(uint64_t inserted_keys) const {
  const double k = static_cast<double>(hashes_.size());
  const double exponent = -k * static_cast<double>(inserted_keys) /
                          static_cast<double>(num_bits_);
  return std::pow(1.0 - std::exp(exponent), k);
}

double BloomFilter::FillRatio() const {
  uint64_t set = 0;
  for (uint64_t word : bits_) set += __builtin_popcountll(word);
  return static_cast<double>(set) / static_cast<double>(num_bits_);
}


std::vector<uint8_t> BloomFilter::Serialize() const {
  std::vector<uint8_t> out;
  out.reserve(40 + bits_.size() * 8);
  AppendU64(kBloomMagic, &out);
  AppendU64(num_bits_, &out);
  AppendU64(static_cast<uint64_t>(hashes_.size()), &out);
  AppendU64(seed_, &out);
  for (uint64_t word : bits_) AppendU64(word, &out);
  return out;
}

BloomFilter BloomFilter::Deserialize(const std::vector<uint8_t>& bytes) {
  ByteReader reader(bytes);
  SKETCH_CHECK_MSG(reader.ReadU64() == kBloomMagic,
                   "not a BloomFilter buffer");
  const uint64_t num_bits = reader.ReadU64();
  const uint64_t num_hashes_word = reader.ReadU64();
  const uint64_t seed = reader.ReadU64();
  SKETCH_CHECK_MSG(num_bits >= 1 && num_bits <= UINT64_MAX - 63,
                   "invalid BloomFilter bit count");
  SKETCH_CHECK_MSG(num_hashes_word >= 1 && num_hashes_word <= 1024,
                   "invalid BloomFilter hash count");
  CheckSerializedSize(bytes, /*header_words=*/4, (num_bits + 63) / 64,
                      "BloomFilter buffer size does not match geometry");
  BloomFilter filter(num_bits, static_cast<int>(num_hashes_word), seed);
  for (uint64_t& word : filter.bits_) word = reader.ReadU64();
  SKETCH_CHECK_MSG(reader.AtEnd(), "trailing bytes in BloomFilter buffer");
  return filter;
}

}  // namespace sketch
