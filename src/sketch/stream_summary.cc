#include "sketch/stream_summary.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/byte_buffer.h"
#include "common/check.h"

namespace sketch {

namespace {
constexpr uint64_t kSummaryMagic = 0x534b53554d4d3031ULL;  // "SKSUMM01"
}  // namespace

StreamSummary::StreamSummary(const Options& options)
    : options_(options),
      dyadic_(options.log_universe, options.width, options.depth,
              options.seed),
      verifier_(options.verify_width, options.depth | 1, ~options.seed),
      ams_(options.width, options.depth | 1, options.seed + 0x5eedULL) {
  SKETCH_CHECK(options.log_universe >= 1 && options.log_universe <= 40);
}

void StreamSummary::Update(const StreamUpdate& update) {
  dyadic_.Update(update);
  verifier_.Update(update);
  ams_.Update(update);
}

void StreamSummary::UpdateAll(const std::vector<StreamUpdate>& updates) {
  ApplyBatch(updates);
}

void StreamSummary::ApplyBatch(UpdateSpan updates) {
  for (const StreamUpdate& u : updates) Update(u);
}

int64_t StreamSummary::EstimateCount(uint64_t item) const {
  const int64_t upper = dyadic_.Estimate(item);   // never too low
  const int64_t unbiased = verifier_.Estimate(item);
  // Count-Min bounds from above; when the unbiased estimate is smaller in
  // magnitude it is the better point estimate (typical under collisions).
  return std::abs(unbiased) < std::abs(upper) ? unbiased : upper;
}

std::vector<uint64_t> StreamSummary::HeavyHitters(double phi) const {
  SKETCH_CHECK(phi > 0.0 && phi < 1.0);
  const auto threshold = static_cast<int64_t>(
      phi * static_cast<double>(dyadic_.TotalCount()));
  if (threshold <= 0) return {};
  std::vector<uint64_t> candidates = dyadic_.HeavyHitters(threshold);
  // Verification pass: prune candidates the unbiased estimator places
  // clearly below the threshold. The 0.8 slack absorbs the Count-Sketch's
  // own noise so borderline *true* hitters are never pruned (recall stays
  // 1); Count-Min ghosts typically estimate near zero and are removed.
  std::erase_if(candidates, [&](uint64_t item) {
    return static_cast<double>(verifier_.Estimate(item)) <
           0.8 * static_cast<double>(threshold);
  });
  return candidates;
}

void StreamSummary::Merge(const StreamSummary& other) {
  SKETCH_CHECK_MSG(options_.log_universe == other.options_.log_universe &&
                       options_.width == other.options_.width &&
                       options_.depth == other.options_.depth &&
                       options_.verify_width == other.options_.verify_width &&
                       options_.seed == other.options_.seed,
                   "merge requires identical geometry and seed");
  // DyadicCountMin has no Merge (its levels are independent CountMin
  // sketches built from the same seeds) — merge by replaying is not
  // possible from the sketch alone, so the dyadic layer exposes Merge via
  // its per-level sketches. Implemented here through the public API of
  // each component.
  dyadic_.Merge(other.dyadic_);
  verifier_.Merge(other.verifier_);
  ams_.Merge(other.ams_);
}

uint64_t StreamSummary::SizeInCounters() const {
  return dyadic_.SizeInCounters() + verifier_.SizeInCounters() +
         options_.width * (options_.depth | 1);
}

uint64_t StreamSummary::MemoryFootprintBytes() const {
  // The components are inline members, so sizeof(*this) already counts
  // their object bodies; add only each component's heap allocations.
  return sizeof(*this) +
         (dyadic_.MemoryFootprintBytes() - sizeof(DyadicCountMin)) +
         (verifier_.MemoryFootprintBytes() - sizeof(CountSketch)) +
         (ams_.MemoryFootprintBytes() - sizeof(AmsSketch));
}

std::vector<uint8_t> StreamSummary::Serialize() const {
  // Header: magic + the five Options words + the three component blob
  // lengths in words. Payload: the component blobs, each a self-contained
  // Serialize() buffer (whole little-endian words, so word lengths are
  // exact).
  const std::vector<uint8_t> dyadic = dyadic_.Serialize();
  const std::vector<uint8_t> verifier = verifier_.Serialize();
  const std::vector<uint8_t> ams = ams_.Serialize();
  std::vector<uint8_t> out;
  out.reserve(72 + dyadic.size() + verifier.size() + ams.size());
  AppendU64(kSummaryMagic, &out);
  AppendU64(static_cast<uint64_t>(options_.log_universe), &out);
  AppendU64(options_.width, &out);
  AppendU64(options_.depth, &out);
  AppendU64(options_.verify_width, &out);
  AppendU64(options_.seed, &out);
  AppendU64(dyadic.size() / 8, &out);
  AppendU64(verifier.size() / 8, &out);
  AppendU64(ams.size() / 8, &out);
  out.insert(out.end(), dyadic.begin(), dyadic.end());
  out.insert(out.end(), verifier.begin(), verifier.end());
  out.insert(out.end(), ams.begin(), ams.end());
  return out;
}

StreamSummary StreamSummary::Deserialize(const std::vector<uint8_t>& bytes) {
  ByteReader reader(bytes);
  SKETCH_CHECK_MSG(reader.ReadU64() == kSummaryMagic,
                   "not a StreamSummary buffer");
  Options options;
  const uint64_t log_universe = reader.ReadU64();
  SKETCH_CHECK_MSG(log_universe >= 1 && log_universe <= 40,
                   "invalid StreamSummary universe");
  options.log_universe = static_cast<int>(log_universe);
  options.width = reader.ReadU64();
  options.depth = reader.ReadU64();
  options.verify_width = reader.ReadU64();
  options.seed = reader.ReadU64();
  SKETCH_CHECK_MSG(
      options.width >= 1 && options.depth >= 1 && options.verify_width >= 1,
      "invalid StreamSummary geometry");
  const uint64_t max_words = bytes.size() / 8;
  const uint64_t dyadic_words = reader.ReadU64();
  const uint64_t verifier_words = reader.ReadU64();
  const uint64_t ams_words = reader.ReadU64();
  SKETCH_CHECK_MSG(dyadic_words <= max_words && verifier_words <= max_words &&
                       ams_words <= max_words,
                   "StreamSummary component length exceeds buffer");
  CheckSerializedSize(bytes, /*header_words=*/9,
                      dyadic_words + verifier_words + ams_words,
                      "StreamSummary buffer size does not match components");
  auto slice = [&bytes](uint64_t offset_words, uint64_t count_words) {
    const auto begin =
        bytes.begin() + static_cast<std::ptrdiff_t>(offset_words * 8);
    return std::vector<uint8_t>(
        begin, begin + static_cast<std::ptrdiff_t>(count_words * 8));
  };
  // Rebuild an empty summary from the Options, then merge in the component
  // blobs: Merge() re-checks that each component's geometry and
  // seed-derived hash functions agree with what the Options would
  // construct, so inconsistent crafted buffers are rejected rather than
  // silently yielding a summary whose parts disagree.
  StreamSummary summary(options);
  summary.dyadic_.Merge(DyadicCountMin::Deserialize(slice(9, dyadic_words)));
  summary.verifier_.Merge(
      CountSketch::Deserialize(slice(9 + dyadic_words, verifier_words)));
  summary.ams_.Merge(AmsSketch::Deserialize(
      slice(9 + dyadic_words + verifier_words, ams_words)));
  return summary;
}

StatsSnapshot StreamSummary::Introspect() const {
  StatsSnapshot snapshot;
  snapshot.type = "StreamSummary";
  snapshot.memory_bytes = MemoryFootprintBytes();
  snapshot.cells = SizeInCounters();
  snapshot.AddField("log_universe",
                    static_cast<double>(options_.log_universe));
  snapshot.AddField("total_count", static_cast<double>(TotalCount()));
  snapshot.children.push_back(dyadic_.Introspect());
  snapshot.children.push_back(verifier_.Introspect());
  snapshot.children.push_back(ams_.Introspect());
  return snapshot;
}

}  // namespace sketch
