#include "sketch/stream_summary.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/check.h"

namespace sketch {

StreamSummary::StreamSummary(const Options& options)
    : options_(options),
      dyadic_(options.log_universe, options.width, options.depth,
              options.seed),
      verifier_(options.verify_width, options.depth | 1, ~options.seed),
      ams_(options.width, options.depth | 1, options.seed + 0x5eedULL) {
  SKETCH_CHECK(options.log_universe >= 1 && options.log_universe <= 40);
}

void StreamSummary::Update(const StreamUpdate& update) {
  dyadic_.Update(update);
  verifier_.Update(update);
  ams_.Update(update);
}

void StreamSummary::UpdateAll(const std::vector<StreamUpdate>& updates) {
  ApplyBatch(updates);
}

void StreamSummary::ApplyBatch(UpdateSpan updates) {
  for (const StreamUpdate& u : updates) Update(u);
}

int64_t StreamSummary::EstimateCount(uint64_t item) const {
  const int64_t upper = dyadic_.Estimate(item);   // never too low
  const int64_t unbiased = verifier_.Estimate(item);
  // Count-Min bounds from above; when the unbiased estimate is smaller in
  // magnitude it is the better point estimate (typical under collisions).
  return std::abs(unbiased) < std::abs(upper) ? unbiased : upper;
}

std::vector<uint64_t> StreamSummary::HeavyHitters(double phi) const {
  SKETCH_CHECK(phi > 0.0 && phi < 1.0);
  const auto threshold = static_cast<int64_t>(
      phi * static_cast<double>(dyadic_.TotalCount()));
  if (threshold <= 0) return {};
  std::vector<uint64_t> candidates = dyadic_.HeavyHitters(threshold);
  // Verification pass: prune candidates the unbiased estimator places
  // clearly below the threshold. The 0.8 slack absorbs the Count-Sketch's
  // own noise so borderline *true* hitters are never pruned (recall stays
  // 1); Count-Min ghosts typically estimate near zero and are removed.
  std::erase_if(candidates, [&](uint64_t item) {
    return static_cast<double>(verifier_.Estimate(item)) <
           0.8 * static_cast<double>(threshold);
  });
  return candidates;
}

void StreamSummary::Merge(const StreamSummary& other) {
  SKETCH_CHECK_MSG(options_.log_universe == other.options_.log_universe &&
                       options_.width == other.options_.width &&
                       options_.depth == other.options_.depth &&
                       options_.verify_width == other.options_.verify_width &&
                       options_.seed == other.options_.seed,
                   "merge requires identical geometry and seed");
  // DyadicCountMin has no Merge (its levels are independent CountMin
  // sketches built from the same seeds) — merge by replaying is not
  // possible from the sketch alone, so the dyadic layer exposes Merge via
  // its per-level sketches. Implemented here through the public API of
  // each component.
  dyadic_.Merge(other.dyadic_);
  verifier_.Merge(other.verifier_);
  ams_.Merge(other.ams_);
}

uint64_t StreamSummary::SizeInCounters() const {
  return dyadic_.SizeInCounters() + verifier_.SizeInCounters() +
         options_.width * (options_.depth | 1);
}

uint64_t StreamSummary::MemoryFootprintBytes() const {
  // The components are inline members, so sizeof(*this) already counts
  // their object bodies; add only each component's heap allocations.
  return sizeof(*this) +
         (dyadic_.MemoryFootprintBytes() - sizeof(DyadicCountMin)) +
         (verifier_.MemoryFootprintBytes() - sizeof(CountSketch)) +
         (ams_.MemoryFootprintBytes() - sizeof(AmsSketch));
}

StatsSnapshot StreamSummary::Introspect() const {
  StatsSnapshot snapshot;
  snapshot.type = "StreamSummary";
  snapshot.memory_bytes = MemoryFootprintBytes();
  snapshot.cells = SizeInCounters();
  snapshot.AddField("log_universe",
                    static_cast<double>(options_.log_universe));
  snapshot.AddField("total_count", static_cast<double>(TotalCount()));
  snapshot.children.push_back(dyadic_.Introspect());
  snapshot.children.push_back(verifier_.Introspect());
  snapshot.children.push_back(ams_.Introspect());
  return snapshot;
}

}  // namespace sketch
