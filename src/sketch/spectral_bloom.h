#ifndef SKETCH_SKETCH_SPECTRAL_BLOOM_H_
#define SKETCH_SKETCH_SPECTRAL_BLOOM_H_

#include <cstdint>
#include <vector>

#include "hash/kwise_hash.h"
#include "stream/update.h"

namespace sketch {

/// Spectral Bloom filter [CM03a]: a Bloom filter whose bits are replaced by
/// counters, answering *multiplicity* queries with the minimum-selection
/// rule. Structurally this is a single-row-per-hash Count-Min laid out in
/// one shared array — included to make the lineage in §1 concrete (the
/// database branch of the same hashing idea).
///
/// Supports deletions (counting Bloom filter semantics): an item can be
/// removed as many times as it was added.
class SpectralBloomFilter {
 public:
  SpectralBloomFilter(uint64_t num_counters, int num_hashes, uint64_t seed);

  /// Adds `delta` occurrences of `key` (delta may be negative for
  /// deletion; strict-turnstile only, like Count-Min).
  void Update(uint64_t key, int64_t delta);

  void Update(const StreamUpdate& update) { Update(update.item, update.delta); }

  /// Minimum-selection estimate of the key's multiplicity. Never
  /// underestimates in the strict turnstile model; 0 means "definitely
  /// absent" (Bloom-filter membership falls out as Estimate(key) > 0).
  int64_t Estimate(uint64_t key) const;

  /// Membership query with counting-Bloom semantics.
  bool MayContain(uint64_t key) const { return Estimate(key) > 0; }

  uint64_t num_counters() const { return num_counters_; }
  int num_hashes() const { return static_cast<int>(hashes_.size()); }

 private:
  uint64_t num_counters_;
  std::vector<KWiseHash> hashes_;
  std::vector<int64_t> counters_;
};

}  // namespace sketch

#endif  // SKETCH_SKETCH_SPECTRAL_BLOOM_H_
