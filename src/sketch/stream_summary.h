#ifndef SKETCH_SKETCH_STREAM_SUMMARY_H_
#define SKETCH_SKETCH_STREAM_SUMMARY_H_

#include <cstdint>
#include <vector>

#include "sketch/ams_sketch.h"
#include "sketch/count_sketch.h"
#include "sketch/dyadic_count_min.h"
#include "stream/update.h"
#include "telemetry/stats.h"

namespace sketch {

/// One-stop, single-pass stream analytics over the sketch toolkit — the
/// "staple of data stream computing" (§1) packaged as a product surface.
///
/// Internally maintains a dyadic Count-Min (point/range/quantile/heavy-
/// hitter queries), a Count-Sketch (unbiased point estimates used to
/// verify heavy-hitter candidates, cutting false positives), and an AMS
/// sketch (F2 / self-join size). All three are linear, so summaries with
/// equal configuration merge losslessly across shards.
class StreamSummary {
 public:
  struct Options {
    int log_universe = 20;    ///< items live in [0, 2^log_universe)
    uint64_t width = 2048;    ///< per-level Count-Min width
    uint64_t depth = 4;       ///< rows per sketch
    uint64_t verify_width = 8192;  ///< Count-Sketch verification width
    uint64_t seed = 1;
  };

  explicit StreamSummary(const Options& options);

  /// Applies one update (any delta; strict-turnstile for quantile/heavy-
  /// hitter semantics).
  void Update(const StreamUpdate& update);

  /// Applies a batch.
  void UpdateAll(const std::vector<StreamUpdate>& updates);

  /// Batched entry point: applies a contiguous block of updates (the unit
  /// of work for the sharded ingestion engine in `src/parallel`).
  void ApplyBatch(UpdateSpan updates);

  /// Total stream mass (exact).
  int64_t TotalCount() const { return dyadic_.TotalCount(); }

  /// Point estimate (Count-Min upper bound cross-checked against the
  /// unbiased Count-Sketch estimate: returns the smaller magnitude).
  int64_t EstimateCount(uint64_t item) const;

  /// Items with estimated frequency >= phi * TotalCount(), verified by
  /// the Count-Sketch to suppress Count-Min false positives. Sorted.
  std::vector<uint64_t> HeavyHitters(double phi) const;

  /// Approximate q-quantile of the item distribution.
  uint64_t Quantile(double q) const { return dyadic_.Quantile(q); }

  /// Estimated mass in [lo, hi] (inclusive); never underestimates.
  int64_t RangeCount(uint64_t lo, uint64_t hi) const {
    return dyadic_.RangeSum(lo, hi);
  }

  /// Estimated second frequency moment F2 = sum_i count(i)^2 (self-join
  /// size).
  double EstimateF2() const { return ams_.EstimateF2(); }

  /// Merges a summary with identical Options (all parts are linear).
  void Merge(const StreamSummary& other);

  /// Total memory footprint in counters.
  uint64_t SizeInCounters() const;

  /// Serializes the Options plus every component sketch (dyadic Count-Min,
  /// Count-Sketch verifier, AMS) to a portable little-endian byte buffer.
  std::vector<uint8_t> Serialize() const;

  /// Reconstructs a summary from Serialize() output; aborts on malformed
  /// buffers (including component blobs whose geometry or derived seeds
  /// disagree with the serialized Options).
  static StreamSummary Deserialize(const std::vector<uint8_t>& bytes);

  /// Resident memory: the object plus each component sketch's footprint.
  uint64_t MemoryFootprintBytes() const;

  /// Structured self-description; the dyadic, verifier, and AMS components
  /// appear as children (see CountMinSketch::Introspect).
  StatsSnapshot Introspect() const;

  /// Human-readable Introspect() dump.
  std::string DebugString() const { return Introspect().DebugString(); }

  const Options& options() const { return options_; }

 private:
  Options options_;
  DyadicCountMin dyadic_;
  CountSketch verifier_;
  AmsSketch ams_;
};

}  // namespace sketch

#endif  // SKETCH_SKETCH_STREAM_SUMMARY_H_
