#ifndef SKETCH_SKETCH_COUNT_MIN_H_
#define SKETCH_SKETCH_COUNT_MIN_H_

#include <cstdint>
#include <vector>

#include "hash/kwise_hash.h"
#include "kernels/block_hasher.h"
#include "kernels/fast_div.h"
#include "sketch/width_mode.h"
#include "stream/update.h"
#include "telemetry/stats.h"

namespace sketch {

/// Count-Min sketch [CM04]: `depth` rows of `width` counters; each row j
/// has a pairwise-independent hash h_j, and an update (a, Δ) adds Δ to
/// counter (j, h_j(a)) in every row. This is exactly the "hashing into an
/// array of counters" process of §1 of the survey, repeated `depth` times.
///
/// Guarantees (strict turnstile, all counts nonnegative):
///   Estimate(a) >= true count, and
///   Estimate(a) <= true count + eps * ||x||_1 with prob >= 1 - delta,
/// when width = ceil(e / eps) and depth = ceil(ln(1 / delta)).
///
/// The sketch is a *linear* function of the frequency vector, so it
/// supports deletions and merging, and doubles as the measurement map in
/// the compressed-sensing connection [CM06] (see `src/cs`).
class CountMinSketch {
 public:
  /// Constructs with explicit geometry. Hash functions for the rows are
  /// derived deterministically from `seed`. In `WidthMode::kPow2` the
  /// requested width is rounded up to the next power of two (width()
  /// reports the rounded value; error bounds must be computed from it) and
  /// the hot-loop bucket reduction becomes a mask — see width_mode.h.
  CountMinSketch(uint64_t width, uint64_t depth, uint64_t seed,
                 WidthMode mode = WidthMode::kDivision);

  /// Sizes the sketch from the (eps, delta) guarantee above.
  static CountMinSketch FromErrorBounds(double eps, double delta,
                                        uint64_t seed);

  /// Applies an update (works for any delta; linear sketch).
  void Update(const StreamUpdate& update);

  /// Applies every update in `updates`.
  void UpdateAll(const std::vector<StreamUpdate>& updates);

  /// Batched entry point: applies a contiguous block of updates.
  /// Equivalent to Update() on each element — this is the unit of work the
  /// sharded ingestion engine (`src/parallel`) hands to each worker.
  void ApplyBatch(UpdateSpan updates);

  /// Conservative update [EV02]: increments only the minimal counters so
  /// that the estimate of `item` rises to (old estimate + delta). Strictly
  /// tightens over-estimation, but is only sound for insert-only streams
  /// (delta > 0) and forfeits linearity (no deletions, no merging).
  void UpdateConservative(uint64_t item, int64_t delta);

  /// Point query: min over rows of the hashed counter. Never
  /// underestimates in the strict turnstile model.
  int64_t Estimate(uint64_t item) const;

  /// Batched point query: fills out[i] = Estimate(items[i]) for all `n`
  /// items, bit-identically, but computes each row's buckets with the
  /// same BlockHasher batch kernels ApplyBatch uses, so the query side of
  /// the read path rides the SIMD tier too.
  void EstimateBatch(const uint64_t* items, std::size_t n,
                     int64_t* out) const;

  /// Merges another sketch built with the same geometry and seed
  /// (counter-wise sum); valid because the sketch is linear.
  void Merge(const CountMinSketch& other);

  /// Estimates the inner product <x, y> of the two sketched frequency
  /// vectors (for relations, the equi-join size |R ⋈ S|, the application
  /// [CM04] highlights): per row, sum of counter products; min over rows.
  /// Never underestimates for nonnegative frequency vectors, and is
  /// within eps*||x||_1*||y||_1 of the truth w.h.p. Requires identical
  /// geometry and seed.
  int64_t EstimateInnerProduct(const CountMinSketch& other) const;

  /// Actual table width (already rounded in kPow2 mode).
  uint64_t width() const { return width_; }
  uint64_t depth() const { return depth_; }
  uint64_t seed() const { return seed_; }
  WidthMode width_mode() const { return width_mode_; }

  /// Total number of counters (the sketch's space cost).
  uint64_t SizeInCounters() const { return width_ * depth_; }

  /// Bucket index of `item` in row `row` — exposed so the compressed-
  /// sensing layer can reconstruct the measurement matrix this sketch
  /// implements.
  uint64_t BucketOf(uint64_t row, uint64_t item) const {
    return rows_[row].BucketOne(item, width_div_);
  }

  /// Raw counter (row-major); exposed for tests and recovery algorithms.
  int64_t CounterAt(uint64_t row, uint64_t bucket) const {
    return counters_[row * width_ + bucket];
  }

  /// Serializes geometry, seed, and counters to a portable little-endian
  /// byte buffer (hash functions are rebuilt from the seed on load).
  std::vector<uint8_t> Serialize() const;

  /// Reconstructs a sketch from Serialize() output; aborts on malformed
  /// buffers.
  static CountMinSketch Deserialize(const std::vector<uint8_t>& bytes);

  /// Resident memory of this sketch: the object plus every owned heap
  /// allocation (counter table, hashers, scratch).
  uint64_t MemoryFootprintBytes() const;

  /// Structured self-description: geometry, memory, bucket-occupancy
  /// histogram, balls-in-bins distinct-key/collision estimates, and
  /// lifetime operation counters (the latter nonzero only in
  /// SKETCH_TELEMETRY=ON builds). Read-only and available in every build.
  StatsSnapshot Introspect() const;

  /// Human-readable Introspect() dump.
  std::string DebugString() const { return Introspect().DebugString(); }

 private:
  uint64_t width_;
  uint64_t depth_;
  uint64_t seed_;
  WidthMode width_mode_;
  uint64_t bucket_mask_;            // width_ - 1 in kPow2 mode, else 0
  FastDiv64 width_div_;             // divide-free `% width_`; for pow2
                                    // widths it equals the mask reduction,
                                    // so single-item paths are mode-free
  std::vector<BlockHasher> rows_;   // one 2-wise hash per row, batched form
  std::vector<int64_t> counters_;   // row-major depth x width
  std::vector<uint64_t> bucket_scratch_;  // per-row buckets of one item
                                          // (UpdateConservative)
  SketchOpCounters ops_;            // lifetime update/merge counts
                                    // (empty stub when telemetry is off)
};

}  // namespace sketch

#endif  // SKETCH_SKETCH_COUNT_MIN_H_
