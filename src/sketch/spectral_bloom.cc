#include "sketch/spectral_bloom.h"

#include <algorithm>

#include "common/check.h"
#include "common/prng.h"

namespace sketch {

SpectralBloomFilter::SpectralBloomFilter(uint64_t num_counters, int num_hashes,
                                         uint64_t seed)
    : num_counters_(num_counters) {
  SKETCH_CHECK(num_counters >= 1);
  SKETCH_CHECK(num_hashes >= 1);
  hashes_.reserve(num_hashes);
  for (int i = 0; i < num_hashes; ++i) {
    hashes_.emplace_back(2, SplitMix64Once(seed + 104729 * i));
  }
  counters_.assign(num_counters, 0);
}

void SpectralBloomFilter::Update(uint64_t key, int64_t delta) {
  // A key may probe the same counter twice through different hashes; the
  // minimum-selection estimate stays correct because every probed counter
  // receives the full delta.
  for (const KWiseHash& h : hashes_) {
    counters_[h.Bucket(key, num_counters_)] += delta;
  }
}

int64_t SpectralBloomFilter::Estimate(uint64_t key) const {
  int64_t best = counters_[hashes_[0].Bucket(key, num_counters_)];
  for (size_t i = 1; i < hashes_.size(); ++i) {
    best = std::min(best, counters_[hashes_[i].Bucket(key, num_counters_)]);
  }
  return best;
}

}  // namespace sketch
