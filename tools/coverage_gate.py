#!/usr/bin/env python3
"""Line-coverage gate over gcov data for files under src/.

Walks a build directory (configured with -DSKETCH_COVERAGE=ON and exercised
via ctest), invokes `gcov --json-format --stdout` on every .gcda file, merges
the per-line execution counts across translation units (a header's lines are
credited if ANY TU executed them), and enforces a minimum line-coverage
percentage on the union of all files under src/.

Uses only gcov (part of gcc) and the standard library — no lcov/gcovr
dependency, so the gate runs in any container that can build the repo.

Usage:
  tools/coverage_gate.py --build-dir build-cov --root . [--min-coverage 80]

Exit codes: 0 gate passed, 1 gate failed, 2 tooling problem (no gcov, no
.gcda files, or unparseable output).
"""

import argparse
import json
import shutil
import subprocess
import sys
from collections import defaultdict
from pathlib import Path


def find_gcda_files(build_dir):
    return sorted(build_dir.rglob("*.gcda"))


def run_gcov(gcda, build_dir):
    """Returns the parsed JSON documents gcov emits for one .gcda file."""
    result = subprocess.run(
        ["gcov", "--json-format", "--stdout", "--object-directory",
         str(gcda.parent), str(gcda)],
        capture_output=True,
        text=True,
        cwd=build_dir,
    )
    if result.returncode != 0:
        print(f"coverage_gate: gcov failed on {gcda}: {result.stderr.strip()}",
              file=sys.stderr)
        return []
    docs = []
    for line in result.stdout.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            docs.append(json.loads(line))
        except json.JSONDecodeError:
            continue
    return docs


def merge_coverage(docs, src_root):
    """Maps src-relative path -> {line_number: max_execution_count}."""
    lines_by_file = defaultdict(dict)
    for doc in docs:
        for file_entry in doc.get("files", []):
            path = Path(file_entry["file"])
            if not path.is_absolute():
                path = (src_root.parent / path).resolve()
            try:
                rel = path.resolve().relative_to(src_root)
            except ValueError:
                continue  # not under src/ — tests, gtest, system headers
            per_line = lines_by_file[str(rel)]
            for line in file_entry.get("lines", []):
                number = line["line_number"]
                per_line[number] = max(per_line.get(number, 0), line["count"])
    return lines_by_file


def report(lines_by_file, min_coverage):
    total_lines = 0
    total_covered = 0
    rows = []
    for rel in sorted(lines_by_file):
        per_line = lines_by_file[rel]
        covered = sum(1 for count in per_line.values() if count > 0)
        rows.append((rel, covered, len(per_line)))
        total_lines += len(per_line)
        total_covered += covered

    width = max(len(rel) for rel, _, _ in rows)
    for rel, covered, count in rows:
        pct = 100.0 * covered / count if count else 100.0
        print(f"  {rel:<{width}}  {covered:>5}/{count:<5}  {pct:6.1f}%")

    overall = 100.0 * total_covered / total_lines if total_lines else 0.0
    print(f"\ncoverage_gate: src/ line coverage "
          f"{total_covered}/{total_lines} = {overall:.2f}% "
          f"(floor {min_coverage:.1f}%)")
    if overall < min_coverage:
        print("coverage_gate: FAIL — below the floor", file=sys.stderr)
        return 1
    print("coverage_gate: OK")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", required=True, type=Path,
                        help="build tree configured with -DSKETCH_COVERAGE=ON")
    parser.add_argument("--root", default=Path("."), type=Path,
                        help="repository root (containing src/)")
    parser.add_argument("--min-coverage", default=80.0, type=float,
                        help="minimum src/ line coverage percentage")
    args = parser.parse_args()

    if shutil.which("gcov") is None:
        print("coverage_gate: gcov not found on PATH", file=sys.stderr)
        return 2
    build_dir = args.build_dir.resolve()
    src_root = (args.root / "src").resolve()
    if not src_root.is_dir():
        print(f"coverage_gate: no src/ under {args.root}", file=sys.stderr)
        return 2

    gcda_files = find_gcda_files(build_dir)
    if not gcda_files:
        print(f"coverage_gate: no .gcda files under {build_dir} — "
              "configure with -DSKETCH_COVERAGE=ON and run ctest first",
              file=sys.stderr)
        return 2

    docs = []
    for gcda in gcda_files:
        docs.extend(run_gcov(gcda, build_dir))
    lines_by_file = merge_coverage(docs, src_root)
    if not lines_by_file:
        print("coverage_gate: gcov produced no data for src/ files",
              file=sys.stderr)
        return 2
    return report(lines_by_file, args.min_coverage)


if __name__ == "__main__":
    sys.exit(main())
