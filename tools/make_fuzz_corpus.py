#!/usr/bin/env python3
"""Generates the deterministic seed corpora for the fuzz harnesses.

Writes one directory per harness under the output root:

  count_min/       valid CountMinSketch serializations + malformed variants
  count_sketch/    same for CountSketch
  bloom_filter/    same for BloomFilter
  ams_sketch/      same for AmsSketch
  hashed_recovery/ structured (geometry, y-vector) decoder inputs
  server_frame/    sketchwire/1 frames (valid requests + framing violations)

The byte layouts mirror src/common/byte_buffer.h: little-endian u64 words,
header (magic, geometry, geometry, seed) then payload words. Seeds include
well-formed buffers (so the round-trip path is exercised from the first
execution) and the malformed classes the deserializers must reject. All
content is fixed — no randomness — so CI corpus runs are reproducible.

Usage: tools/make_fuzz_corpus.py OUTPUT_DIR
"""

import struct
import sys
from pathlib import Path

MAGICS = {
    "count_min": 0x534B434D494E3031,  # "SKCMIN01"
    "count_sketch": 0x534B43534B543031,  # "SKCSKT01"
    "bloom_filter": 0x534B424C4F4F4D31,  # "SKBLOOM1"
    "ams_sketch": 0x534B414D53303031,  # "SKAMS001"
}


def u64(*values):
    return b"".join(struct.pack("<Q", v & (2**64 - 1)) for v in values)


def i64(*values):
    return b"".join(struct.pack("<q", v) for v in values)


def counter_sketch_buffer(magic, width, depth, seed, counters=None):
    if counters is None:
        counters = [(i * 37 - 8) for i in range(width * depth)]
    return u64(magic, width, depth, seed) + i64(*counters)


def bloom_buffer(magic, num_bits, num_hashes, seed, words=None):
    num_words = (num_bits + 63) // 64
    if words is None:
        words = [0x0123456789ABCDEF ^ (i * 0x1111) for i in range(num_words)]
    return u64(magic, num_bits, num_hashes, seed) + u64(*words)


def hashed_recovery_input(variant, width, depth, dimension, k, seed, y):
    header = bytes(
        [variant, (width - 1) % 256, (depth - 1) % 256, (dimension - 1) % 256,
         k % 256]
    ) + u64(seed)
    return header + b"".join(struct.pack("<d", v) for v in y)


def write(directory, name, blob):
    directory.mkdir(parents=True, exist_ok=True)
    (directory / name).write_bytes(blob)


def counter_seeds(out, target, magic):
    base = counter_sketch_buffer(magic, 8, 3, 42)
    write(out / target, "valid_8x3", base)
    write(out / target, "valid_1x1", counter_sketch_buffer(magic, 1, 1, 0))
    write(out / target, "valid_64x1",
          counter_sketch_buffer(magic, 64, 1, 7))
    write(out / target, "truncated_header", base[:20])
    write(out / target, "truncated_payload", base[:-12])
    write(out / target, "inflated_tail", base + b"\x00" * 16)
    # Geometry claims 2^32 x 2^32 counters: the product wraps to zero in
    # unchecked u64 arithmetic — must be rejected before any allocation.
    write(out / target, "geometry_overflow",
          u64(magic, 2**32, 2**32, 1))
    write(out / target, "zero_geometry", u64(magic, 0, 0, 1))
    wrong_magic = bytearray(base)
    wrong_magic[0] ^= 0xFF
    write(out / target, "wrong_magic", bytes(wrong_magic))
    write(out / target, "empty", b"")


def bloom_seeds(out):
    magic = MAGICS["bloom_filter"]
    base = bloom_buffer(magic, 256, 4, 99)
    write(out / "bloom_filter", "valid_256b", base)
    write(out / "bloom_filter", "valid_1b", bloom_buffer(magic, 1, 1, 3))
    write(out / "bloom_filter", "truncated", base[:-8])
    write(out / "bloom_filter", "inflated", base + b"\xff" * 8)
    write(out / "bloom_filter", "huge_hash_count",
          bloom_buffer(magic, 64, 2**20, 1))
    write(out / "bloom_filter", "bit_count_overflow",
          u64(magic, 2**64 - 1, 2, 1))
    write(out / "bloom_filter", "zero_bits", u64(magic, 0, 1, 1))


def hashed_recovery_seeds(out):
    d = out / "hashed_recovery"
    # width=4, depth=2 -> correct y length is 8.
    write(d, "valid_count_sketch",
          hashed_recovery_input(0, 4, 2, 16, 4, 11,
                                [float(i) - 3.5 for i in range(8)]))
    write(d, "valid_count_min",
          hashed_recovery_input(1, 4, 2, 16, 4, 11,
                                [float(i) for i in range(8)]))
    write(d, "wrong_length_y",
          hashed_recovery_input(0, 4, 2, 16, 4, 11, [1.0, 2.0, 3.0]))
    write(d, "nan_inf_y",
          hashed_recovery_input(0, 2, 2, 8, 2, 5,
                                [float("nan"), float("inf"),
                                 float("-inf"), 0.0]))
    write(d, "k_zero",
          hashed_recovery_input(0, 2, 1, 4, 0, 1, [1.0, -1.0]))
    write(d, "empty", b"")


def wire_frame(opcode, payload=b"", version=1, reserved=0, declared_len=None):
    """sketchwire/1 frame: u32 payload length, u8 opcode, u8 version,
    u16 reserved, then payload (see src/server/protocol.h)."""
    if declared_len is None:
        declared_len = len(payload)
    return struct.pack("<IBBH", declared_len, opcode, version,
                       reserved) + payload


def wire_string(name):
    raw = name.encode()
    return struct.pack("<H", len(raw)) + raw


def server_frame_seeds(out):
    d = out / "server_frame"
    # Well-formed requests: a create + ingest + query conversation, so the
    # service dispatch path is covered from the first execution.
    create = wire_string("f") + bytes([1]) + u64(64, 2, 7, 0, 0)
    ingest = wire_string("f") + struct.pack("<I", 2) + u64(3) + i64(5) + \
        u64(9) + i64(-1)
    query = wire_string("f") + u64(3)
    write(d, "conversation",
          wire_frame(0x02, create) + wire_frame(0x04, ingest) +
          wire_frame(0x05, query))
    write(d, "ping", wire_frame(0x01))
    write(d, "snapshot_missing", wire_frame(0x08, wire_string("ghost")))
    write(d, "restore_tiny_blob",
          wire_frame(0x09, wire_string("r") + bytes([1]) +
                     struct.pack("<I", 4) + b"\x00\x01\x02\x03"))
    # Framing violations the decoder must reject from the header alone.
    write(d, "length_overflow", wire_frame(0x01, declared_len=2**32 - 1))
    write(d, "wrong_version", wire_frame(0x01, version=9))
    write(d, "reserved_bits", wire_frame(0x01, reserved=0xBEEF))
    write(d, "unknown_opcode", wire_frame(0x7F))
    # Payload malformations behind a valid header.
    write(d, "truncated_payload", wire_frame(0x05, wire_string("f"))[:-3])
    write(d, "ingest_count_lies",
          wire_frame(0x04, wire_string("f") + struct.pack("<I", 1000)))
    write(d, "string_past_end",
          wire_frame(0x05, struct.pack("<H", 500) + b"ab"))
    write(d, "empty", b"")


def main():
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    out = Path(sys.argv[1])
    for target in ("count_min", "count_sketch", "ams_sketch"):
        counter_seeds(out, target, MAGICS[target])
    bloom_seeds(out)
    hashed_recovery_seeds(out)
    server_frame_seeds(out)
    total = sum(1 for p in out.rglob("*") if p.is_file())
    print(f"make_fuzz_corpus: wrote {total} seed files under {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
