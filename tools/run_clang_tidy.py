#!/usr/bin/env python3
"""Runs the .clang-tidy gate over the repo's C++ sources.

Expects a build directory configured with CMAKE_EXPORT_COMPILE_COMMANDS=ON
(the CI lint job does `cmake -B build -DCMAKE_EXPORT_COMPILE_COMMANDS=ON`).
Files are taken from compile_commands.json so only translation units that
actually build are analyzed; headers are covered through the
HeaderFilterRegex in .clang-tidy.

Usage:
  tools/run_clang_tidy.py [--build-dir build] [--clang-tidy clang-tidy]
                          [--jobs N] [--paths src tests bench]

Exits non-zero on any finding (WarningsAsErrors is '*' in .clang-tidy), or
with a clear message if clang-tidy is not installed.
"""

import argparse
import concurrent.futures
import json
import shutil
import subprocess
import sys
from pathlib import Path


def tidy_one(clang_tidy, build_dir, source):
    proc = subprocess.run(
        [clang_tidy, "-p", str(build_dir), "--quiet", str(source)],
        capture_output=True,
        text=True,
    )
    return source, proc.returncode, proc.stdout.strip()


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", default="build")
    parser.add_argument("--clang-tidy", default="clang-tidy")
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument(
        "--paths",
        nargs="*",
        default=["src", "tests", "bench", "examples", "fuzz"],
        help="top-level directories whose TUs should be analyzed",
    )
    args = parser.parse_args(argv)

    if shutil.which(args.clang_tidy) is None:
        print(
            f"error: {args.clang_tidy} not found; install clang-tidy or pass "
            "--clang-tidy",
            file=sys.stderr,
        )
        return 2

    compdb_path = Path(args.build_dir) / "compile_commands.json"
    if not compdb_path.is_file():
        print(
            f"error: {compdb_path} missing; configure with "
            "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON",
            file=sys.stderr,
        )
        return 2

    repo_root = Path.cwd().resolve()
    wanted = tuple(str(repo_root / p) + "/" for p in args.paths)
    sources = sorted(
        {
            str(Path(entry["file"]).resolve())
            for entry in json.loads(compdb_path.read_text())
            if str(Path(entry["file"]).resolve()).startswith(wanted)
        }
    )
    if not sources:
        print("error: no sources matched", file=sys.stderr)
        return 2

    failures = 0
    with concurrent.futures.ThreadPoolExecutor(max_workers=args.jobs) as pool:
        futures = [
            pool.submit(tidy_one, args.clang_tidy, args.build_dir, s)
            for s in sources
        ]
        for future in concurrent.futures.as_completed(futures):
            source, code, output = future.result()
            if code != 0:
                failures += 1
                print(f"== {source}")
                print(output)
    print(
        f"clang-tidy: {len(sources)} files, {failures} with findings",
        file=sys.stderr,
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
