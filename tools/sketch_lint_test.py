#!/usr/bin/env python3
"""Unit tests for tools/sketch_lint.py.

Each rule gets a seeded violation in a synthetic repo tree and the test
asserts the linter flags exactly that rule; a companion clean tree must
pass. Run directly (python3 tools/sketch_lint_test.py) or via ctest
(sketch_lint_selftest).
"""

import sys
import tempfile
import unittest
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import sketch_lint  # noqa: E402


def write_tree(root, files):
    for rel, content in files.items():
        path = Path(root) / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(content)


def rules_found(violations):
    return {rule for _, _, rule, _ in violations}


CLEAN_HEADER = """\
#ifndef SKETCH_WIDGET_H_
#define SKETCH_WIDGET_H_

namespace sketch {

class Widget {
 public:
  void Merge(const Widget& other) {
    SKETCH_CHECK(size_ == other.size_);
    size_ += other.size_;
  }

 private:
  int size_ = 0;
};

}  // namespace sketch

#endif  // SKETCH_WIDGET_H_
"""


class SketchLintTest(unittest.TestCase):
    def lint(self, files):
        with tempfile.TemporaryDirectory() as tmp:
            write_tree(tmp, files)
            return sketch_lint.run(tmp)

    def test_clean_tree_passes(self):
        violations = self.lint({"src/widget.h": CLEAN_HEADER})
        self.assertEqual(violations, [])

    def test_sl001_missing_include_guard(self):
        violations = self.lint(
            {"src/widget.h": "namespace sketch {}\n"}
        )
        self.assertEqual(rules_found(violations), {"SL001"})

    def test_sl001_wrong_guard_name(self):
        bad = CLEAN_HEADER.replace("SKETCH_WIDGET_H_", "WIDGET_H")
        violations = self.lint({"src/widget.h": bad})
        self.assertIn("SL001", rules_found(violations))

    def test_sl001_guard_derives_from_path(self):
        # The same guard text is wrong in a subdirectory.
        violations = self.lint({"src/sub/widget.h": CLEAN_HEADER})
        self.assertEqual(rules_found(violations), {"SL001"})
        fixed = CLEAN_HEADER.replace(
            "SKETCH_WIDGET_H_", "SKETCH_SUB_WIDGET_H_"
        )
        self.assertEqual(self.lint({"src/sub/widget.h": fixed}), [])

    def test_sl002_merge_without_check(self):
        bad = CLEAN_HEADER.replace(
            "    SKETCH_CHECK(size_ == other.size_);\n", ""
        )
        violations = self.lint({"src/widget.h": bad})
        self.assertEqual(rules_found(violations), {"SL002"})

    def test_sl002_merge_call_is_not_a_definition(self):
        source = """\
#include "widget.h"
namespace sketch {
void Combine(Widget* a, const Widget& b) { a->Merge(b); }
}  // namespace sketch
"""
        violations = self.lint(
            {"src/widget.h": CLEAN_HEADER, "src/combine.cc": source}
        )
        self.assertEqual(violations, [])

    def test_sl002_merge_mentioned_in_comment_is_ignored(self):
        source = """\
// Merge(a, b) without a check would be wrong; see Widget::Merge.
namespace sketch {}
"""
        violations = self.lint(
            {"src/widget.h": CLEAN_HEADER, "src/notes.cc": source}
        )
        self.assertEqual(violations, [])

    def test_sl003_deserialize_without_size_check(self):
        source = """\
namespace sketch {
Widget Widget::Deserialize(const std::vector<uint8_t>& bytes) {
  Widget w;
  return w;
}
}  // namespace sketch
"""
        violations = self.lint(
            {"src/widget.h": CLEAN_HEADER, "src/widget.cc": source}
        )
        self.assertEqual(rules_found(violations), {"SL003"})

    def test_sl003_deserialize_with_size_check_passes(self):
        source = """\
namespace sketch {
Widget Widget::Deserialize(const std::vector<uint8_t>& bytes) {
  CheckSerializedSize(bytes, 4, 0, "Widget");
  Widget w;
  return w;
}
}  // namespace sketch
"""
        violations = self.lint(
            {"src/widget.h": CLEAN_HEADER, "src/widget.cc": source}
        )
        self.assertEqual(violations, [])

    def test_sl004_raw_randomness_outside_prng(self):
        source = """\
#include <random>
namespace sketch {
int Roll() {
  std::random_device rd;
  return rand() + static_cast<int>(rd());
}
}  // namespace sketch
"""
        violations = self.lint({"src/roll.cc": source})
        self.assertEqual(rules_found(violations), {"SL004"})
        self.assertEqual(len(violations), 2)  # random_device and rand()

    def test_sl004_allowed_inside_prng(self):
        source = "namespace sketch { int S() { return rand(); } }\n"
        violations = self.lint({"src/common/prng.cc": source})
        self.assertEqual(violations, [])

    def test_sl004_applies_to_tests_and_bench(self):
        source = "void F() { std::mt19937 gen(1); (void)gen; }\n"
        violations = self.lint({"tests/foo_test.cc": source})
        self.assertEqual(rules_found(violations), {"SL004"})

    def test_sl004_ignores_strands(self):
        # "strand" contains "rand" but is not a call to rand().
        source = "namespace sketch { int strand(int x) { return x; } }\n"
        violations = self.lint({"src/strand.cc": source})
        # The definition `int strand(` is itself a call-shaped match the
        # word boundary must reject.
        self.assertEqual(violations, [])

    def test_sl005_naked_new_and_delete(self):
        source = """\
namespace sketch {
int* Make() { return new int(3); }
void Drop(int* p) { delete p; }
}  // namespace sketch
"""
        violations = self.lint({"src/owner.cc": source})
        self.assertEqual(rules_found(violations), {"SL005"})
        self.assertEqual(len(violations), 2)

    def test_sl005_deleted_functions_allowed(self):
        source = """\
#ifndef SKETCH_POOL_H_
#define SKETCH_POOL_H_
namespace sketch {
class Pool {
 public:
  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;
};
}  // namespace sketch
#endif  // SKETCH_POOL_H_
"""
        violations = self.lint({"src/pool.h": source})
        self.assertEqual(violations, [])

    def test_sl007_decode_allocation_without_validation(self):
        source = """\
namespace sketch::server {
bool DecodeThing(const Frame& frame, Thing* out) {
  uint32_t count = frame.payload[0];
  out->items.resize(count);
  return true;
}
}  // namespace sketch::server
"""
        violations = self.lint({"src/server/thing.cc": source})
        self.assertEqual(rules_found(violations), {"SL007"})

    def test_sl007_allocation_after_cap_check_passes(self):
        source = """\
namespace sketch::server {
bool DecodeThing(const Frame& frame, Thing* out) {
  uint32_t count = frame.payload[0];
  if (count > kMaxBatchUpdates || reader.remaining() / 16 < count) {
    return false;
  }
  out->items.resize(count);
  return true;
}
bool TryReadChunk(std::vector<uint8_t>* out) {
  uint32_t length = 0;
  if (length > remaining()) return false;
  out->assign(data_, data_ + length);
  return true;
}
}  // namespace sketch::server
"""
        violations = self.lint({"src/server/thing.cc": source})
        self.assertEqual(violations, [])

    def test_sl007_only_applies_to_server_decode_paths(self):
        # The same unvalidated resize outside src/server, or in a
        # non-decode function, is out of SL007's scope.
        decode_elsewhere = """\
namespace sketch {
bool DecodeThing(const Frame& frame, Thing* out) {
  out->items.resize(frame.payload[0]);
  return true;
}
}  // namespace sketch
"""
        helper_in_server = """\
namespace sketch::server {
void BuildRows(std::vector<double>* rows, uint64_t depth) {
  rows->reserve(depth);
}
}  // namespace sketch::server
"""
        violations = self.lint(
            {
                "src/sketch/thing.cc": decode_elsewhere,
                "src/server/helper.cc": helper_in_server,
            }
        )
        self.assertEqual(violations, [])

    def test_sl008_raw_mutex_member(self):
        source = """\
#ifndef SKETCH_POOL_H_
#define SKETCH_POOL_H_
#include <mutex>
namespace sketch {
class Pool {
 private:
  std::mutex mu_;
  std::condition_variable cv_;
};
}  // namespace sketch
#endif  // SKETCH_POOL_H_
"""
        violations = self.lint({"src/pool.h": source})
        self.assertEqual(rules_found(violations), {"SL008"})
        self.assertEqual(
            len([v for v in violations if v[2] == "SL008"]), 2
        )

    def test_sl008_lock_guard_template_argument_is_not_a_member(self):
        source = """\
namespace sketch {
void F() { std::lock_guard<std::mutex> lock(GlobalMu()); }
}  // namespace sketch
"""
        violations = self.lint({"src/user.cc": source})
        self.assertNotIn("SL008", rules_found(violations))

    def test_sl008_unannotated_wrapped_mutex(self):
        source = """\
#ifndef SKETCH_POOL_H_
#define SKETCH_POOL_H_
namespace sketch {
class Pool {
 private:
  Mutex mu_;
  int jobs_ = 0;
};
}  // namespace sketch
#endif  // SKETCH_POOL_H_
"""
        violations = self.lint({"src/pool.h": source})
        self.assertEqual(rules_found(violations), {"SL008"})

    def test_sl008_annotated_wrapped_mutex_passes(self):
        source = """\
#ifndef SKETCH_POOL_H_
#define SKETCH_POOL_H_
namespace sketch {
class Pool {
 public:
  void Add() SKETCH_EXCLUDES(mu_);
 private:
  mutable Mutex mu_;
  int jobs_ SKETCH_GUARDED_BY(mu_) = 0;
};
}  // namespace sketch
#endif  // SKETCH_POOL_H_
"""
        violations = self.lint({"src/pool.h": source})
        self.assertEqual(violations, [])

    def test_sl008_only_applies_under_src(self):
        source = """\
#include <mutex>
namespace sketch {
class Helper { std::mutex mu_; };
}  // namespace sketch
"""
        violations = self.lint({"tests/helper_test.cc": source})
        self.assertNotIn("SL008", rules_found(violations))

    def test_sl009_bare_atomic_calls(self):
        source = """\
namespace sketch {
struct S { std::atomic<int> n{0}; };
int F(S& s) {
  s.n.fetch_add(1);
  s.n.store(2);
  return s.n.load();
}
}  // namespace sketch
"""
        violations = self.lint({"src/counter.cc": source})
        self.assertEqual(rules_found(violations), {"SL009"})
        self.assertEqual(
            len([v for v in violations if v[2] == "SL009"]), 3
        )

    def test_sl009_explicit_order_passes_even_multiline(self):
        source = """\
namespace sketch {
struct S { std::atomic<int> n{0}; };
int F(S& s) {
  s.n.fetch_add(1,
                std::memory_order_relaxed);
  return s.n.load(std::memory_order_acquire);
}
}  // namespace sketch
"""
        violations = self.lint({"src/counter.cc": source})
        self.assertEqual(violations, [])

    def test_sl009_operator_forms_on_declared_atomics(self):
        source = """\
namespace sketch {
class C {
  void Bump() {
    hits_++;
    total_ += 2;
    mode_ = 3;
  }
  std::atomic<int> hits_{0};
  std::atomic<int> total_{0};
  std::atomic<int> mode_{0};
};
}  // namespace sketch
"""
        violations = self.lint({"src/counter.h": "#ifndef SKETCH_COUNTER_H_\n#define SKETCH_COUNTER_H_\n" + source + "#endif  // SKETCH_COUNTER_H_\n"})
        self.assertEqual(rules_found(violations), {"SL009"})
        self.assertEqual(
            len([v for v in violations if v[2] == "SL009"]), 3
        )

    def test_sl009_sees_atomics_declared_in_paired_header(self):
        header = """\
#ifndef SKETCH_COUNTER_H_
#define SKETCH_COUNTER_H_
namespace sketch {
class C {
 public:
  void Bump();
 private:
  std::atomic<int> hits_{0};
};
}  // namespace sketch
#endif  // SKETCH_COUNTER_H_
"""
        source = """\
namespace sketch {
void C::Bump() { hits_++; }
}  // namespace sketch
"""
        violations = self.lint(
            {"src/counter.h": header, "src/counter.cc": source}
        )
        self.assertEqual(rules_found(violations), {"SL009"})

    def test_sl009_declaration_initializer_is_not_an_operation(self):
        source = """\
namespace sketch {
std::atomic<int> counter = 0;
struct Snapshot { int counter = 0; };
void F(Snapshot& s) { s.counter = 1; }
}  // namespace sketch
"""
        violations = self.lint({"src/counter.cc": source})
        self.assertNotIn("SL009", rules_found(violations))

    def test_sl009_only_applies_under_src(self):
        source = """\
namespace sketch {
std::atomic<int> n{0};
int F() { return n.load(); }
}  // namespace sketch
"""
        violations = self.lint({"tests/counter_test.cc": source})
        self.assertNotIn("SL009", rules_found(violations))

    def test_sl010_manual_lock_unlock(self):
        source = """\
namespace sketch {
void F(Mutex& mu) {
  mu.Lock();
  mu.Unlock();
}
void G(std::mutex& mu) {
  mu.lock();
  mu.unlock();
}
}  // namespace sketch
"""
        violations = self.lint({"src/locking.cc": source})
        self.assertEqual(rules_found(violations), {"SL010"})
        self.assertEqual(
            len([v for v in violations if v[2] == "SL010"]), 4
        )

    def test_sl010_raii_constructor_is_not_a_lock_call(self):
        source = """\
namespace sketch {
void F(Mutex& mu) { MutexLock lock(mu); }
}  // namespace sketch
"""
        violations = self.lint({"src/locking.cc": source})
        self.assertEqual(violations, [])

    def test_sl008_sl010_allow_the_wrapper_header(self):
        wrapper = """\
#ifndef SKETCH_COMMON_THREAD_ANNOTATIONS_H_
#define SKETCH_COMMON_THREAD_ANNOTATIONS_H_
#include <mutex>
namespace sketch {
class Mutex {
 public:
  void Lock() { mu_.lock(); }
  void Unlock() { mu_.unlock(); }
 private:
  std::mutex mu_;
};
}  // namespace sketch
#endif  // SKETCH_COMMON_THREAD_ANNOTATIONS_H_
"""
        violations = self.lint(
            {"src/common/thread_annotations.h": wrapper}
        )
        self.assertEqual(violations, [])

    def test_thread_annotation_macros_compile_away_under_gcc(self):
        # The real wrapper header must be a no-op for non-clang
        # compilers: an annotated fixture has to compile under g++ with
        # the macros expanding to nothing.
        import shutil

        cxx = shutil.which("g++") or shutil.which("c++")
        if cxx is None:
            self.skipTest("no C++ compiler available")
        repo_root = Path(__file__).resolve().parent.parent
        annotations = (
            repo_root / "src" / "common" / "thread_annotations.h"
        ).read_text()
        fixture = """\
#ifndef SKETCH_FIXTURE_H_
#define SKETCH_FIXTURE_H_
#include "common/thread_annotations.h"
namespace sketch {
class Fixture {
 public:
  void Add(int n) SKETCH_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    total_ += n;
  }
 private:
  mutable Mutex mu_;
  int total_ SKETCH_GUARDED_BY(mu_) = 0;
};
}  // namespace sketch
#endif  // SKETCH_FIXTURE_H_
"""
        with tempfile.TemporaryDirectory() as tmp:
            write_tree(
                tmp,
                {
                    "src/common/thread_annotations.h": annotations,
                    "src/fixture.h": fixture,
                },
            )
            root = Path(tmp)
            failures = sketch_lint.compile_header(
                root, cxx, root / "src" / "fixture.h"
            )
            self.assertEqual(failures, [], failures)

    CLEAN_AVX2_TU = """\
#include "kernels/simd_dispatch.h"

#if defined(__AVX2__) && defined(__x86_64__)
#include <immintrin.h>
#else
#include "kernels/block_hasher.h"
#endif

namespace sketch {
#if defined(__AVX2__) && defined(__x86_64__)
void HashLanes(__m256i* out) { *out = _mm256_setzero_si256(); }
#endif
}  // namespace sketch
"""

    def test_sl011_clean_intrinsics_tu_passes(self):
        violations = self.lint(
            {"src/kernels/widget_avx2.cc": self.CLEAN_AVX2_TU}
        )
        self.assertEqual(violations, [])

    def test_sl011_intrinsics_outside_kernels(self):
        source = """\
#include <immintrin.h>
namespace sketch {
void Fast(__m256i* out) { *out = _mm256_setzero_si256(); }
}  // namespace sketch
"""
        for rel in ("src/sketch/fast.cc", "bench/bench_fast.cc",
                    "tests/fast_test.cc"):
            violations = self.lint({rel: source})
            self.assertEqual(rules_found(violations), {"SL011"}, rel)

    def test_sl011_intrinsics_in_kernels_header(self):
        header = """\
#ifndef SKETCH_KERNELS_LANES_H_
#define SKETCH_KERNELS_LANES_H_
namespace sketch {
inline void HashLanes(__m256i* out);
}  // namespace sketch
#endif  // SKETCH_KERNELS_LANES_H_
"""
        violations = self.lint({"src/kernels/lanes.h": header})
        self.assertEqual(rules_found(violations), {"SL011"})

    def test_sl011_unguarded_include(self):
        bad = self.CLEAN_AVX2_TU.replace(
            "#if defined(__AVX2__) && defined(__x86_64__)\n"
            "#include <immintrin.h>\n"
            "#else\n"
            '#include "kernels/block_hasher.h"\n'
            "#endif\n",
            "#include <immintrin.h>\n",
            1,
        )
        violations = self.lint({"src/kernels/widget_avx2.cc": bad})
        self.assertEqual(rules_found(violations), {"SL011"})

    def test_sl011_missing_scalar_fallback(self):
        bad = self.CLEAN_AVX2_TU.replace(
            "#else\n#include \"kernels/block_hasher.h\"\n", "", 1
        )
        violations = self.lint({"src/kernels/widget_avx2.cc": bad})
        self.assertEqual(rules_found(violations), {"SL011"})

    def test_sl011_missing_dispatch_include(self):
        bad = self.CLEAN_AVX2_TU.replace(
            '#include "kernels/simd_dispatch.h"\n\n', "", 1
        )
        violations = self.lint({"src/kernels/widget_avx2.cc": bad})
        self.assertEqual(rules_found(violations), {"SL011"})

    def test_sl011_intrinsic_names_in_comments_are_ignored(self):
        source = """\
namespace sketch {
// The AVX2 tier uses _mm256_mul_epu32(a, b) partial products; see
// src/kernels/block_hasher_avx2.cc for the __m256i lane layout.
}  // namespace sketch
"""
        violations = self.lint({"src/sketch/notes.cc": source})
        self.assertEqual(violations, [])

    SL012_SOURCE = """\
namespace sketch {
void Touch() {
  SKETCH_COUNTER_INC("server.widget.requests");
  SKETCH_HISTOGRAM_RECORD("server.widget.latency_ns", 42);
}
}  // namespace sketch
"""

    SL012_INVENTORY = """\
# Metrics inventory
| `server.widget.requests` | widget requests |
| `server.widget.latency_ns` | widget latency |
"""

    def test_sl012_documented_metrics_pass(self):
        violations = self.lint(
            {
                "src/server/widget.cc": self.SL012_SOURCE,
                "docs/metrics_inventory.md": self.SL012_INVENTORY,
            }
        )
        self.assertEqual(violations, [])

    def test_sl012_undocumented_metric_fails(self):
        inventory = self.SL012_INVENTORY.replace(
            "| `server.widget.latency_ns` | widget latency |\n", ""
        )
        violations = self.lint(
            {
                "src/server/widget.cc": self.SL012_SOURCE,
                "docs/metrics_inventory.md": inventory,
            }
        )
        self.assertEqual(rules_found(violations), {"SL012"})
        self.assertEqual(len(violations), 1)
        self.assertIn("server.widget.latency_ns", violations[0][3])

    def test_sl012_missing_inventory_flags_every_metric(self):
        violations = self.lint({"src/server/widget.cc": self.SL012_SOURCE})
        self.assertEqual(rules_found(violations), {"SL012"})
        self.assertEqual(len(violations), 2)

    def test_sl012_ignores_non_src_and_comments(self):
        commented = """\
namespace sketch {
// SKETCH_COUNTER_INC("server.ghost.metric") used to live here.
void Touch() {}
}  // namespace sketch
"""
        violations = self.lint(
            {
                # Metric literals in tests/bench don't need inventory rows.
                "tests/widget_test.cc": self.SL012_SOURCE,
                "bench/bench_widget.cc": self.SL012_SOURCE,
                "src/server/notes.cc": commented,
            }
        )
        self.assertEqual(violations, [])

    def test_sl012_variable_names_are_ignored(self):
        source = """\
namespace sketch {
void Touch(const std::string& name) {
  MetricRegistry::Instance().GetCounter(name).Increment();
}
}  // namespace sketch
"""
        violations = self.lint({"src/server/dynamic.cc": source})
        self.assertEqual(violations, [])

    def test_violations_in_strings_and_comments_are_ignored(self):
        source = """\
namespace sketch {
// new delete rand() std::random_device
const char* kDoc = "use new and delete and rand()";
}  // namespace sketch
"""
        violations = self.lint({"src/doc.cc": source})
        self.assertEqual(violations, [])

    def test_repo_is_clean(self):
        repo_root = Path(__file__).resolve().parent.parent
        violations = sketch_lint.run(repo_root)
        self.assertEqual(
            violations,
            [],
            "\n".join(
                f"{rel}:{line}: {rule} {msg}"
                for rel, line, rule, msg in violations
            ),
        )


if __name__ == "__main__":
    unittest.main()
