#!/usr/bin/env python3
"""Repo-specific invariant linter for the sketching library.

Enforces structural correctness properties that generic tools (clang-tidy,
compiler warnings) cannot express, because they are about *this* codebase's
contracts — the linearity and geometry invariants the sketch guarantees
rest on:

  SL001  every public header under src/ carries the canonical include guard
         (SKETCH_<PATH>_H_) so headers cannot silently double-include.
  SL002  every Merge() definition under src/ contains a SKETCH_CHECK: merging
         sketches with different geometry or seeds silently corrupts every
         subsequent estimate, so the guard is non-negotiable.
  SL003  every Deserialize() definition under src/ calls CheckSerializedSize
         (the uniform pre-allocation length validation in
         common/byte_buffer.h) so untrusted buffers cannot drive allocations
         from unvalidated geometry fields.
  SL004  no direct rand()/srand()/std::random_device/std::mt19937 outside
         src/common/prng — all randomness must flow through the seeded
         generators or experiments stop being reproducible.
  SL005  no naked new/delete — ownership is vectors and values; a naked new
         is either a leak or a sign the design went sideways.
  SL006  (--compile-headers) every public header under src/ is
         self-contained: a TU containing only that #include must compile.
  SL007  protocol decode paths under src/server (Decode*/TryRead*/Next
         definitions) length-validate before allocating: any
         resize/reserve/assign must be preceded, within the same function,
         by a comparison against a kMax* cap, a remaining()-bytes check,
         CheckSketchBlob, or a SKETCH_CHECK — so a hostile length prefix
         can never drive an allocation.
  SL008  lock discipline is annotation-visible under src/: no raw
         std::mutex / std::condition_variable members (use the annotated
         sketch::Mutex / sketch::CondVar wrappers from
         common/thread_annotations.h, where clang's -Wthread-safety can
         see them), and every declared Mutex must be referenced by at
         least one SKETCH_GUARDED_BY / SKETCH_REQUIRES / SKETCH_ACQUIRE /
         SKETCH_RELEASE / SKETCH_EXCLUDES annotation in the same file — an
         unannotated mutex guards nothing the analyzer can check. The
         semantic half (every guarded access actually holds the lock) is
         enforced by the clang -Wthread-safety CI build; this rule keeps
         the annotations present so that build has something to verify,
         including under gcc where the macros compile away.
  SL009  every std::atomic operation under src/ spells its memory order:
         no bare .load()/.store()/.fetch_*()/.exchange() defaults and no
         operator forms (x++, x += n, x = v) on declared atomics — the
         default is seq_cst, and an implicit order hides whether the
         ordering is load-bearing. Each relaxed site must be a deliberate,
         commented decision (see src/telemetry), not an accident.
  SL010  no manual .lock()/.unlock()/.try_lock() (or .Lock()/.Unlock()/
         .TryLock()) calls under src/ — locking is RAII-only via
         sketch::MutexLock, so no early return or exception can leak a
         held lock. The wrapper internals in common/thread_annotations.h
         are the single allowed exception.
  SL011  SIMD intrinsics (<immintrin.h>, _mm*/__m* tokens) are quarantined
         in non-header translation units under src/kernels/: only those
         TUs are compiled with -mavx2, so an intrinsic anywhere else either
         fails to compile or — worse — silently compiles because some
         header leaked a vector type. Inside a kernels TU the include must
         sit under an #if probing __AVX2__ with an #else scalar fallback,
         and the TU must include kernels/simd_dispatch.h — the dispatch
         seam that keeps the vector path unreachable on CPUs without the
         ISA. Headers may never contain intrinsics (SL006 compiles every
         header without -mavx2).
  SL012  every telemetry metric-name literal under src/ (the string
         argument of SKETCH_COUNTER_INC / SKETCH_COUNTER_ADD /
         SKETCH_HISTOGRAM_RECORD / GetCounter / GetHistogram) must appear,
         backtick-quoted, in docs/metrics_inventory.md. Metric names are a
         scrape-interface contract: dashboards and alerts key on them, so
         an undocumented name is an API change nobody reviewed, and the
         inventory is where renames get caught.

SL008 and SL010 allowlist src/common/thread_annotations.h (the wrappers
must touch the raw primitives once). SL009 exempts nothing under src/:
the telemetry stripes already spell memory_order_relaxed at every site.

Usage:
  tools/sketch_lint.py --root . [--compile-headers] [--cxx g++] [--jobs N]

Exits non-zero if any violation is found and prints one line per finding:
  path:line: SLxxx message
"""

import argparse
import concurrent.futures
import re
import subprocess
import sys
import tempfile
from pathlib import Path

SOURCE_DIRS = ("src", "bench", "tests", "examples", "fuzz")
HEADER_SUFFIXES = (".h", ".hpp")
SOURCE_SUFFIXES = (".h", ".hpp", ".cc", ".cpp")

# Files allowed to touch raw randomness primitives (SL004).
PRNG_ALLOWLIST = ("src/common/prng.h", "src/common/prng.cc")

RAW_RANDOM_PATTERNS = (
    (re.compile(r"\b(?:std\s*::\s*)?s?rand\s*\("), "rand()/srand()"),
    (re.compile(r"\bstd\s*::\s*random_device\b"), "std::random_device"),
    (re.compile(r"\bstd\s*::\s*mt19937(?:_64)?\b"), "std::mt19937"),
)


def strip_comments_and_strings(text):
    """Replaces comments and string/char literals with spaces, preserving
    line structure so reported line numbers stay accurate."""
    out = []
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            end = text.find("\n", i)
            end = n if end == -1 else end
            out.append(" " * (end - i))
            i = end
        elif c == "/" and nxt == "*":
            end = text.find("*/", i + 2)
            end = n - 2 if end == -1 else end
            chunk = text[i : end + 2]
            out.append("".join(ch if ch == "\n" else " " for ch in chunk))
            i = end + 2
        elif c == '"' or c == "'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            out.append(quote + " " * (j - i - 1) + (quote if j < n else ""))
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def line_of(text, offset):
    return text.count("\n", 0, offset) + 1


def expected_guard(rel_to_src):
    mangled = re.sub(r"[^A-Za-z0-9]", "_", str(rel_to_src)).upper()
    return f"SKETCH_{mangled}_"


def check_include_guard(path, rel_to_src, text):
    guard = expected_guard(rel_to_src)
    violations = []
    ifndef = re.search(r"^#ifndef\s+(\S+)\s*$", text, re.MULTILINE)
    if not ifndef or ifndef.group(1) != guard:
        violations.append(
            (
                1,
                "SL001",
                f"missing or wrong include guard (expected {guard})",
            )
        )
        return violations
    define = re.search(r"^#define\s+(\S+)\s*$", text, re.MULTILINE)
    if not define or define.group(1) != guard:
        violations.append(
            (
                line_of(text, ifndef.start()),
                "SL001",
                f"#ifndef {guard} not followed by matching #define",
            )
        )
    if not re.search(r"^#endif\b", text, re.MULTILINE):
        violations.append((1, "SL001", "include guard has no #endif"))
    return violations


def _find_function_definitions(clean, name):
    """Yields (start_offset, body) for each definition of `name` in
    comment/string-stripped source text."""
    for match in re.finditer(rf"\b{name}\s*\(", clean):
        start = match.start()
        before = clean[:start].rstrip()
        # Member calls (x.Merge(...), p->Merge(...)) are not definitions.
        if before.endswith(".") or before.endswith("->"):
            continue
        # Walk past the parameter list.
        depth = 0
        i = match.end() - 1
        while i < len(clean):
            if clean[i] == "(":
                depth += 1
            elif clean[i] == ")":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        if i >= len(clean):
            continue
        # Skip trailing qualifiers; a definition opens a brace next.
        j = i + 1
        while j < len(clean) and (
            clean[j].isspace()
            or clean[j : j + 5] == "const"
            or clean[j : j + 8] == "noexcept"
            or clean[j : j + 8] == "override"
        ):
            if clean[j].isspace():
                j += 1
            elif clean[j : j + 5] == "const":
                j += 5
            else:
                j += 8
        if j >= len(clean) or clean[j] != "{":
            continue  # declaration, deleted function, or call
        depth = 0
        k = j
        while k < len(clean):
            if clean[k] == "{":
                depth += 1
            elif clean[k] == "}":
                depth -= 1
                if depth == 0:
                    break
            k += 1
        yield start, clean[j : k + 1]


def check_merge_guard(clean):
    violations = []
    for start, body in _find_function_definitions(clean, "Merge"):
        if "SKETCH_CHECK" not in body:
            violations.append(
                (
                    line_of(clean, start),
                    "SL002",
                    "Merge() definition lacks a SKETCH_CHECK on "
                    "geometry/seed compatibility",
                )
            )
    return violations


def check_deserialize_guard(clean):
    violations = []
    for start, body in _find_function_definitions(clean, "Deserialize"):
        if "CheckSerializedSize" not in body:
            violations.append(
                (
                    line_of(clean, start),
                    "SL003",
                    "Deserialize() definition does not length-validate via "
                    "CheckSerializedSize before allocating",
                )
            )
    return violations


def check_raw_randomness(rel, clean):
    if str(rel).replace("\\", "/") in PRNG_ALLOWLIST:
        return []
    violations = []
    for pattern, label in RAW_RANDOM_PATTERNS:
        for match in pattern.finditer(clean):
            violations.append(
                (
                    line_of(clean, match.start()),
                    "SL004",
                    f"direct {label} outside src/common/prng; use the "
                    "seeded generators",
                )
            )
    return violations


def check_naked_new_delete(clean):
    violations = []
    for match in re.finditer(r"\bnew\b", clean):
        violations.append(
            (
                line_of(clean, match.start()),
                "SL005",
                "naked new; use containers or value semantics",
            )
        )
    for match in re.finditer(r"\bdelete\b", clean):
        before = clean[: match.start()].rstrip()
        if before.endswith("="):  # deleted special member: `= delete;`
            continue
        violations.append(
            (
                line_of(clean, match.start()),
                "SL005",
                "naked delete; use containers or value semantics",
            )
        )
    return violations


# SL007: allocation calls inside a decode path, and the validation tokens
# that must appear earlier in the same function body.
SL007_ALLOC = re.compile(r"\.(?:resize|reserve|assign)\s*\(")
SL007_GUARD = re.compile(
    r"kMax\w+|\bremaining\s*\(|SKETCH_CHECK|CheckSketchBlob"
)


def check_server_decode_allocation(rel, clean):
    """SL007: src/server decode paths must length-validate before any
    allocation — a declared length from the wire may only reach
    resize/reserve/assign after a cap or remaining-bytes comparison."""
    if not str(rel).replace("\\", "/").startswith("src/server/"):
        return []
    violations = []
    for start, body in _find_function_definitions(
        clean, r"(?:Decode|TryRead|Next)\w*"
    ):
        body_offset = clean.find(body, start)
        for alloc in SL007_ALLOC.finditer(body):
            if not SL007_GUARD.search(body[: alloc.start()]):
                violations.append(
                    (
                        line_of(clean, body_offset + alloc.start()),
                        "SL007",
                        "decode path allocates before length-validating "
                        "against a cap (kMax*/remaining()/SKETCH_CHECK/"
                        "CheckSketchBlob)",
                    )
                )
    return violations


# Files allowed to touch raw synchronization primitives (SL008/SL010):
# the annotated wrapper types themselves.
THREAD_WRAPPER_ALLOWLIST = ("src/common/thread_annotations.h",)

# SL008: raw synchronization-primitive declarations (the `\s+\w+` tail
# rejects template-argument uses such as std::lock_guard<std::mutex>).
SL008_RAW_PRIMITIVE = re.compile(
    r"\bstd\s*::\s*((?:shared_)?mutex|condition_variable(?:_any)?)\s+\w+"
)
# A wrapped-mutex member/variable declaration: `Mutex mu_;` (or
# `SharedMutex mu_;`) with optional mutable/namespace qualification.
# `\bMutex\s` cannot match MutexLock.
SL008_MUTEX_DECL = re.compile(
    r"\b(?:mutable\s+)?(?:sketch\s*::\s*)?(?:Shared)?Mutex\s+(\w+)\s*;"
)
SL008_ANNOTATION_MACROS = (
    "GUARDED_BY",
    "PT_GUARDED_BY",
    "REQUIRES",
    "ACQUIRE",
    "RELEASE",
    "TRY_ACQUIRE",
    "EXCLUDES",
    "RETURN_CAPABILITY",
)


def check_thread_annotations(rel, clean):
    """SL008: no raw std::mutex/std::condition_variable under src/, and
    every declared (wrapped) Mutex is referenced by at least one
    SKETCH_* thread-safety annotation in the same file."""
    rel_str = str(rel).replace("\\", "/")
    if not rel_str.startswith("src/") or rel_str in THREAD_WRAPPER_ALLOWLIST:
        return []
    violations = []
    for match in SL008_RAW_PRIMITIVE.finditer(clean):
        violations.append(
            (
                line_of(clean, match.start()),
                "SL008",
                f"raw std::{match.group(1)}; use the annotated "
                "sketch::Mutex/CondVar wrappers from "
                "common/thread_annotations.h",
            )
        )
    for match in SL008_MUTEX_DECL.finditer(clean):
        name = match.group(1)
        referenced = any(
            re.search(
                rf"SKETCH_{macro}\s*\(\s*{re.escape(name)}\s*[,)]", clean
            )
            for macro in SL008_ANNOTATION_MACROS
        )
        if not referenced:
            violations.append(
                (
                    line_of(clean, match.start()),
                    "SL008",
                    f"Mutex {name} has no SKETCH_GUARDED_BY/"
                    "SKETCH_REQUIRES/... annotation referencing it; an "
                    "unannotated mutex guards nothing the analyzer can "
                    "check",
                )
            )
    return violations


# SL009: atomic member-function calls that take an optional memory-order
# argument.
SL009_ATOMIC_CALL = re.compile(
    r"\.\s*(load|store|exchange|fetch_add|fetch_sub|fetch_and|fetch_or|"
    r"fetch_xor|compare_exchange_weak|compare_exchange_strong)\s*\("
)
# Declarations establishing that a name is a std::atomic (directly or as
# an array of atomics); used for the operator-form half of SL009.
SL009_ATOMIC_DECL = re.compile(
    r"\bstd\s*::\s*atomic\s*<[^<>;]*(?:<[^<>]*>[^<>;]*)?>\s+(\w+)"
)
SL009_ATOMIC_ARRAY_DECL = re.compile(
    r"\bstd\s*::\s*array\s*<\s*std\s*::\s*atomic\s*<[^<>]*>\s*,[^>]*>"
    r"\s+(\w+)"
)


def _balanced_args(clean, open_paren):
    """Returns the argument text of the call whose '(' is at open_paren."""
    depth = 0
    for i in range(open_paren, len(clean)):
        if clean[i] == "(":
            depth += 1
        elif clean[i] == ")":
            depth -= 1
            if depth == 0:
                return clean[open_paren + 1 : i]
    return clean[open_paren + 1 :]


def _atomic_names(root, path, clean):
    """Atomic variable names declared in this file plus its same-stem
    header (members used in a .cc are declared in the .h)."""
    names = set()
    for source in (clean,):
        for pattern in (SL009_ATOMIC_DECL, SL009_ATOMIC_ARRAY_DECL):
            names.update(m.group(1) for m in pattern.finditer(source))
    if path.suffix != ".h":
        header = path.with_suffix(".h")
        if header.is_file():
            header_clean = strip_comments_and_strings(
                header.read_text(encoding="utf-8", errors="replace")
            )
            for pattern in (SL009_ATOMIC_DECL, SL009_ATOMIC_ARRAY_DECL):
                names.update(
                    m.group(1) for m in pattern.finditer(header_clean)
                )
    return names


def check_atomic_memory_orders(root, rel, path, clean):
    """SL009: every atomic op under src/ spells its memory order."""
    rel_str = str(rel).replace("\\", "/")
    if not rel_str.startswith("src/"):
        return []
    violations = []
    for match in SL009_ATOMIC_CALL.finditer(clean):
        args = _balanced_args(clean, match.end() - 1)
        if "memory_order" not in args:
            violations.append(
                (
                    line_of(clean, match.start()),
                    "SL009",
                    f".{match.group(1)}() without an explicit "
                    "std::memory_order argument (the implicit default is "
                    "seq_cst; spell the ordering and justify relaxed ones)",
                )
            )
    names = _atomic_names(root, path, clean)
    for name in names:
        escaped = re.escape(name)
        operator_forms = (
            rf"\b{escaped}(?:\s*\[[^\]]*\])?\s*(?:\+\+|--|[-+|&^]=)",
            rf"(?:\+\+|--)\s*{escaped}\b",
            rf"\b{escaped}(?:\s*\[[^\]]*\])?\s*=(?![=])",
        )
        for form in operator_forms:
            for match in re.finditer(form, clean):
                # Look at the token immediately before the name. A type
                # token (identifier char, '>', '&', '*') means this is a
                # declaration with an initializer, not an operation; a
                # member access ('.', '->') means the receiver is some
                # other object that merely shares the field name — a
                # regex cannot see its type, so we stay silent (the
                # repo's atomics are only ever touched unqualified from
                # inside their own class).
                i = match.start()
                while i > 0 and clean[i - 1] in " \t":
                    i -= 1
                prev = clean[i - 1] if i > 0 else ""
                if prev.isalnum() or prev in "_>&*.-":
                    continue
                violations.append(
                    (
                        line_of(clean, match.start()),
                        "SL009",
                        f"operator form on std::atomic '{name}' uses the "
                        "implicit seq_cst default; call "
                        "fetch_add/store/load with an explicit "
                        "std::memory_order",
                    )
                )
    return violations


# SL010: manual lock-management calls (empty argument list, so RAII
# constructors like `MutexLock lock(mu_)` cannot match).
SL010_MANUAL_LOCK = re.compile(
    r"(?:\.|->)\s*(lock|unlock|try_lock|lock_shared|unlock_shared|"
    r"Lock|Unlock|TryLock|LockShared|UnlockShared)\s*\(\s*\)"
)


def check_raii_locking(rel, clean):
    """SL010: no manual lock()/unlock() calls under src/ — RAII only."""
    rel_str = str(rel).replace("\\", "/")
    if not rel_str.startswith("src/") or rel_str in THREAD_WRAPPER_ALLOWLIST:
        return []
    violations = []
    for match in SL010_MANUAL_LOCK.finditer(clean):
        violations.append(
            (
                line_of(clean, match.start()),
                "SL010",
                f"manual .{match.group(1)}() call; hold locks via RAII "
                "(sketch::MutexLock) so no path can leak a held lock",
            )
        )
    return violations


# SL011: intrinsic headers and vector tokens. The include survives comment
# stripping (angle brackets are not string literals); the quoted
# simd_dispatch include does NOT, so that check runs on the raw text.
SL011_INTRIN_INCLUDE = re.compile(r"#\s*include\s*<\s*\w*intrin\.h\s*>")
SL011_INTRIN_TOKEN = re.compile(
    r"\b_mm(?:256|512)?_\w+\s*\(|\b__m(?:64|128|256|512)[di]?\b"
)
SL011_AVX2_GUARD = re.compile(r"#\s*(?:if|ifdef|elif)[^\n]*__AVX2__")


def check_simd_quarantine(rel, text, clean):
    """SL011: intrinsics only in src/kernels/ non-header TUs, and every
    intrinsics TU keeps the dispatch-guarded scalar-fallback shape."""
    rel_str = str(rel).replace("\\", "/")
    include_match = SL011_INTRIN_INCLUDE.search(clean)
    token_match = SL011_INTRIN_TOKEN.search(clean)
    first = min(
        (m for m in (include_match, token_match) if m is not None),
        key=lambda m: m.start(),
        default=None,
    )
    if first is None:
        return []
    in_kernels = rel_str.startswith("src/kernels/")
    is_header = rel_str.endswith(HEADER_SUFFIXES)
    if not in_kernels or is_header:
        where = (
            "a header (headers compile without -mavx2; see SL006)"
            if in_kernels
            else "outside src/kernels/"
        )
        return [
            (
                line_of(clean, first.start()),
                "SL011",
                f"SIMD intrinsics in {where}; vector code lives in "
                "src/kernels/ translation units behind the simd_dispatch "
                "layer",
            )
        ]
    violations = []
    if include_match is not None:
        guard = SL011_AVX2_GUARD.search(clean)
        if guard is None or guard.start() > include_match.start():
            violations.append(
                (
                    line_of(clean, include_match.start()),
                    "SL011",
                    "<*intrin.h> include is not guarded by an #if probing "
                    "__AVX2__; the TU must fall back to scalar code when "
                    "the toolchain cannot target the ISA",
                )
            )
        elif "#else" not in clean:
            violations.append(
                (
                    line_of(clean, include_match.start()),
                    "SL011",
                    "intrinsics TU has no #else scalar fallback branch; "
                    "non-AVX2 builds would lose the entry points and fail "
                    "to link",
                )
            )
    if "simd_dispatch.h" not in text:
        violations.append(
            (
                line_of(clean, first.start()),
                "SL011",
                "intrinsics TU does not include kernels/simd_dispatch.h; "
                "vector entry points must be reachable only through the "
                "runtime dispatch seam",
            )
        )
    return violations


METRICS_INVENTORY = "docs/metrics_inventory.md"

# SL012: a metric-registration call up to and including its opening quote.
# Matched against the comment-stripped text (so commented-out calls don't
# count), then the name itself is read from the raw text at the same
# offset — strip_comments_and_strings blanks string interiors but
# preserves offsets exactly.
SL012_METRIC_CALL = re.compile(
    r"\b(?:SKETCH_COUNTER_(?:INC|ADD)|SKETCH_HISTOGRAM_RECORD|"
    r"GetCounter|GetHistogram)\s*\(\s*\""
)
SL012_METRIC_NAME = re.compile(r'((?:[^"\\\n]|\\.)*)"')


def load_metrics_inventory(root):
    path = root / METRICS_INVENTORY
    if not path.is_file():
        return None
    return path.read_text(encoding="utf-8", errors="replace")


def check_metric_inventory(rel, text, clean, inventory):
    """SL012: src/ metric-name literals must be rows in the inventory."""
    rel_str = str(rel).replace("\\", "/")
    if not rel_str.startswith("src/"):
        return []
    violations = []
    for call in SL012_METRIC_CALL.finditer(clean):
        name_match = SL012_METRIC_NAME.match(text, call.end())
        if name_match is None:
            continue
        name = name_match.group(1)
        if inventory is None or f"`{name}`" not in inventory:
            violations.append(
                (
                    line_of(clean, call.start()),
                    "SL012",
                    f'metric name "{name}" is not documented in '
                    f"{METRICS_INVENTORY}; metric names are a "
                    "scrape-interface contract — add a backtick-quoted "
                    "row for it (or fix the name)",
                )
            )
    return violations


def lint_file(root, path, inventory=None):
    rel = path.relative_to(root)
    text = path.read_text(encoding="utf-8", errors="replace")
    clean = strip_comments_and_strings(text)
    violations = []
    under_src = str(rel).replace("\\", "/").startswith("src/")
    if under_src and path.suffix in HEADER_SUFFIXES:
        violations += check_include_guard(
            path, path.relative_to(root / "src"), text
        )
    if under_src:
        violations += check_merge_guard(clean)
        violations += check_deserialize_guard(clean)
        violations += check_naked_new_delete(clean)
    violations += check_raw_randomness(rel, clean)
    violations += check_server_decode_allocation(rel, clean)
    violations += check_thread_annotations(rel, clean)
    violations += check_atomic_memory_orders(root, rel, path, clean)
    violations += check_raii_locking(rel, clean)
    violations += check_simd_quarantine(rel, text, clean)
    violations += check_metric_inventory(rel, text, clean, inventory)
    return [(rel, line, rule, msg) for line, rule, msg in violations]


def compile_header(root, cxx, header):
    rel = header.relative_to(root / "src")
    with tempfile.NamedTemporaryFile(
        mode="w", suffix=".cc", delete=False
    ) as tu:
        tu.write(f'#include "{rel}"\n')
        tu_path = tu.name
    try:
        proc = subprocess.run(
            [
                cxx,
                "-std=c++20",
                "-fsyntax-only",
                "-Wall",
                "-Wextra",
                f"-I{root / 'src'}",
                "-x",
                "c++",
                tu_path,
            ],
            capture_output=True,
            text=True,
        )
    finally:
        Path(tu_path).unlink(missing_ok=True)
    if proc.returncode != 0:
        detail = proc.stderr.strip().splitlines()
        first = detail[0] if detail else "compile failed"
        return [
            (
                header.relative_to(root),
                1,
                "SL006",
                f"header is not self-contained: {first}",
            )
        ]
    return []


def collect_files(root):
    for top in SOURCE_DIRS:
        base = root / top
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix in SOURCE_SUFFIXES and path.is_file():
                yield path


def run(root, compile_headers=False, cxx="g++", jobs=4):
    root = Path(root).resolve()
    inventory = load_metrics_inventory(root)
    violations = []
    for path in collect_files(root):
        violations += lint_file(root, path, inventory)
    if compile_headers:
        headers = [
            p
            for p in collect_files(root)
            if p.suffix in HEADER_SUFFIXES
            and str(p.relative_to(root)).replace("\\", "/").startswith("src/")
        ]
        with concurrent.futures.ThreadPoolExecutor(max_workers=jobs) as pool:
            for result in pool.map(
                lambda h: compile_header(root, cxx, h), headers
            ):
                violations += result
    return sorted(violations, key=lambda v: (str(v[0]), v[1], v[2]))


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=".", help="repository root")
    parser.add_argument(
        "--compile-headers",
        action="store_true",
        help="also verify every src/ header compiles stand-alone (SL006)",
    )
    parser.add_argument("--cxx", default="g++", help="compiler for SL006")
    parser.add_argument("--jobs", type=int, default=4)
    args = parser.parse_args(argv)

    violations = run(
        args.root,
        compile_headers=args.compile_headers,
        cxx=args.cxx,
        jobs=args.jobs,
    )
    for rel, line, rule, msg in violations:
        print(f"{rel}:{line}: {rule} {msg}")
    if violations:
        print(f"sketch_lint: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    print("sketch_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
