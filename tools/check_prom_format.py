#!/usr/bin/env python3
"""Validator for the Prometheus text exposition format (version 0.0.4).

CI curls the daemon's /metrics endpoint and pipes the body through this
script, so a formatting regression (bad escaping, broken family
grouping, non-monotone histogram buckets) fails the build instead of
silently corrupting the first real scrape.

Checks:
  - every line is a comment, blank, or a well-formed sample
    (name{labels} value), with metric and label names matching the spec
    grammar and label values using only the legal escapes (\\\\, \\",
    \\n);
  - `# TYPE` lines name a valid type and precede every sample of their
    family;
  - samples of one family are contiguous (the format forbids
    interleaving);
  - counter sample names end in `_total`;
  - histogram families have cumulative, monotone `_bucket` series with a
    `+Inf` bucket equal to `_count`, plus `_sum` and `_count` samples;
  - values parse as floats (including +Inf/-Inf/NaN).

Usage:
  tools/check_prom_format.py FILE        # or '-' for stdin
  tools/check_prom_format.py --self-test

Exits 0 when the input is valid, 1 with one `line N: message` per error
otherwise.
"""

import argparse
import re
import sys

METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
TYPE_LINE = re.compile(r"^#\s+TYPE\s+(\S+)\s+(\S+)\s*$")
HELP_LINE = re.compile(r"^#\s+HELP\s+(\S+)\s(.*)$")
VALID_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")

HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")
SUMMARY_SUFFIXES = ("_sum", "_count")


def base_family(name, declared_types):
    """Maps a sample name to its declared family: histogram samples
    `x_bucket`/`x_sum`/`x_count` belong to family `x`, etc."""
    for suffix in HISTOGRAM_SUFFIXES:
        if name.endswith(suffix):
            base = name[: -len(suffix)]
            if declared_types.get(base) in ("histogram", "summary"):
                return base
    return name


def parse_labels(text, line_no, errors):
    """Parses the inside of a `{...}` label block. Returns a dict or None
    on error."""
    labels = {}
    i = 0
    n = len(text)
    while i < n:
        eq = text.find("=", i)
        if eq == -1:
            errors.append((line_no, f"malformed label block near '{text[i:]}'"))
            return None
        name = text[i:eq]
        if not LABEL_NAME.match(name):
            errors.append((line_no, f"bad label name '{name}'"))
            return None
        if eq + 1 >= n or text[eq + 1] != '"':
            errors.append((line_no, f"label '{name}' value is not quoted"))
            return None
        j = eq + 2
        value = []
        while j < n:
            c = text[j]
            if c == "\\":
                if j + 1 >= n or text[j + 1] not in ('\\', '"', "n"):
                    errors.append(
                        (line_no,
                         f"illegal escape '\\{text[j + 1:j + 2]}' in label "
                         f"'{name}' (only \\\\ \\\" \\n are legal)")
                    )
                    return None
                value.append(text[j + 1])
                j += 2
            elif c == '"':
                break
            else:
                value.append(c)
                j += 1
        else:
            errors.append((line_no, f"unterminated value for label '{name}'"))
            return None
        labels[name] = "".join(value)
        i = j + 1
        if i < n:
            if text[i] != ",":
                errors.append(
                    (line_no, f"expected ',' between labels, got '{text[i]}'")
                )
                return None
            i += 1
    return labels


def parse_value(text, line_no, errors):
    token = text.strip().split()
    if not token:
        errors.append((line_no, "sample has no value"))
        return None
    # An optional timestamp may follow the value; both must be numeric.
    for part in token[1:]:
        try:
            float(part)
        except ValueError:
            errors.append((line_no, f"bad timestamp '{part}'"))
            return None
    try:
        return float(token[0].replace("+Inf", "inf").replace("-Inf", "-inf"))
    except ValueError:
        errors.append((line_no, f"bad sample value '{token[0]}'"))
        return None


def check_text(text):
    """Validates one exposition body. Returns a list of (line, message)."""
    errors = []
    declared_types = {}  # family -> type
    family_order = []  # families in first-sample order
    closed_families = set()  # families whose sample block has ended
    current_family = None
    # histogram family -> list of (le, value), plus _sum/_count presence
    histograms = {}

    lines = text.splitlines()
    for line_no, line in enumerate(lines, start=1):
        if line == "":
            continue
        if line.startswith("#"):
            type_match = TYPE_LINE.match(line)
            if type_match:
                family, family_type = type_match.groups()
                if not METRIC_NAME.match(family):
                    errors.append((line_no, f"bad metric name '{family}'"))
                    continue
                if family_type not in VALID_TYPES:
                    errors.append(
                        (line_no,
                         f"bad TYPE '{family_type}' for '{family}' "
                         f"(expected one of {', '.join(VALID_TYPES)})")
                    )
                    continue
                if family in declared_types:
                    errors.append((line_no, f"duplicate TYPE for '{family}'"))
                    continue
                declared_types[family] = family_type
                if family_type == "histogram":
                    histograms[family] = {"buckets": [], "sum": False,
                                          "count": None}
            # HELP and free comments are legal and otherwise ignored.
            continue

        # Sample line: name[{labels}] value [timestamp].
        brace = line.find("{")
        if brace != -1:
            close = line.rfind("}")
            if close == -1 or close < brace:
                errors.append((line_no, "unterminated label block"))
                continue
            name = line[:brace]
            labels = parse_labels(line[brace + 1:close], line_no, errors)
            if labels is None:
                continue
            rest = line[close + 1:]
        else:
            parts = line.split(None, 1)
            name = parts[0]
            labels = {}
            rest = parts[1] if len(parts) > 1 else ""
        if not METRIC_NAME.match(name):
            errors.append((line_no, f"bad metric name '{name}'"))
            continue
        value = parse_value(rest, line_no, errors)
        if value is None:
            continue

        family = base_family(name, declared_types)
        if family not in declared_types:
            errors.append(
                (line_no, f"sample '{name}' has no preceding # TYPE line")
            )
            continue
        if family != current_family:
            if family in closed_families:
                errors.append(
                    (line_no,
                     f"family '{family}' samples are not contiguous "
                     "(interleaved with another family)")
                )
                continue
            if current_family is not None:
                closed_families.add(current_family)
            current_family = family
            family_order.append(family)

        family_type = declared_types[family]
        if family_type == "counter" and not name.endswith("_total"):
            errors.append(
                (line_no,
                 f"counter sample '{name}' does not end in _total")
            )
        if family_type == "histogram":
            record = histograms[family]
            if name.endswith("_bucket"):
                if "le" not in labels:
                    errors.append(
                        (line_no, f"bucket sample '{name}' has no le label")
                    )
                    continue
                le = labels["le"]
                bound = float("inf") if le == "+Inf" else None
                if bound is None:
                    try:
                        bound = float(le)
                    except ValueError:
                        errors.append((line_no, f"bad le value '{le}'"))
                        continue
                record["buckets"].append((line_no, bound, value))
            elif name.endswith("_sum"):
                record["sum"] = True
            elif name.endswith("_count"):
                record["count"] = value

    # Post-pass: histogram shape.
    for family, record in histograms.items():
        buckets = record["buckets"]
        if not buckets:
            errors.append((0, f"histogram '{family}' has no _bucket samples"))
            continue
        prev_bound = None
        prev_value = None
        for line_no, bound, value in buckets:
            if prev_bound is not None and bound <= prev_bound:
                errors.append(
                    (line_no,
                     f"histogram '{family}' le bounds are not increasing")
                )
            if prev_value is not None and value < prev_value:
                errors.append(
                    (line_no,
                     f"histogram '{family}' bucket counts are not "
                     "cumulative/monotone")
                )
            prev_bound, prev_value = bound, value
        if buckets[-1][1] != float("inf"):
            errors.append((0, f"histogram '{family}' has no +Inf bucket"))
        if not record["sum"]:
            errors.append((0, f"histogram '{family}' has no _sum sample"))
        if record["count"] is None:
            errors.append((0, f"histogram '{family}' has no _count sample"))
        elif buckets[-1][1] == float("inf") and \
                buckets[-1][2] != record["count"]:
            errors.append(
                (0,
                 f"histogram '{family}' +Inf bucket ({buckets[-1][2]:g}) != "
                 f"_count ({record['count']:g})")
            )
    return errors


GOOD_EXPOSITION = """\
# TYPE requests_total counter
requests_total 42
# TYPE sketch_health_occupancy gauge
sketch_health_occupancy{sketch="evil\\"quote"} 0.5
sketch_health_occupancy{sketch="multi\\nline"} 0.25
sketch_health_occupancy{sketch="curly{}name"} 1
# TYPE latency_ns histogram
latency_ns_bucket{le="0"} 2
latency_ns_bucket{le="255"} 5
latency_ns_bucket{le="+Inf"} 10
latency_ns_sum 1234
latency_ns_count 10
# TYPE latency_ns_summary summary
latency_ns_summary{quantile="0.5"} 2
latency_ns_summary{quantile="0.99"} 506.88
"""

BAD_CASES = (
    ("no TYPE line", "orphan_metric 1\n", "no preceding # TYPE"),
    ("bad metric name",
     "# TYPE 9bad counter\n9bad_total 1\n", "bad metric name"),
    ("bad type",
     "# TYPE m flavor\nm 1\n", "bad TYPE"),
    ("counter without _total",
     "# TYPE hits counter\nhits 3\n", "_total"),
    ("bad value",
     "# TYPE m gauge\nm pizza\n", "bad sample value"),
    ("illegal escape",
     '# TYPE m gauge\nm{l="a\\tb"} 1\n', "illegal escape"),
    ("unterminated label value",
     '# TYPE m gauge\nm{l="a} 1\n', "unterminated value"),
    ("interleaved families",
     "# TYPE a gauge\n# TYPE b gauge\na 1\nb 2\na 3\n",
     "not contiguous"),
    ("non-monotone buckets",
     "# TYPE h histogram\n"
     'h_bucket{le="1"} 5\nh_bucket{le="2"} 3\nh_bucket{le="+Inf"} 5\n'
     "h_sum 9\nh_count 5\n",
     "not cumulative"),
    ("missing +Inf bucket",
     '# TYPE h histogram\nh_bucket{le="1"} 5\nh_sum 9\nh_count 5\n',
     "+Inf"),
    ("+Inf != count",
     "# TYPE h histogram\n"
     'h_bucket{le="+Inf"} 4\nh_sum 9\nh_count 5\n',
     "!= _count"),
    ("duplicate TYPE",
     "# TYPE m gauge\n# TYPE m gauge\nm 1\n", "duplicate TYPE"),
)


def self_test():
    failures = []
    good_errors = check_text(GOOD_EXPOSITION)
    if good_errors:
        failures.append(f"good exposition rejected: {good_errors}")
    for label, text, expected in BAD_CASES:
        errors = check_text(text)
        if not errors:
            failures.append(f"bad case '{label}' was accepted")
        elif not any(expected in message for _, message in errors):
            failures.append(
                f"bad case '{label}' produced {errors}, expected a message "
                f"containing '{expected}'"
            )
    for failure in failures:
        print(f"self-test: {failure}", file=sys.stderr)
    print(f"check_prom_format self-test: "
          f"{len(BAD_CASES) + 1 - len(failures)}/{len(BAD_CASES) + 1} ok")
    return 1 if failures else 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("input", nargs="?", default="-",
                        help="exposition file, or '-' for stdin")
    parser.add_argument("--self-test", action="store_true",
                        help="run the embedded good/bad cases and exit")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()

    if args.input == "-":
        text = sys.stdin.read()
    else:
        with open(args.input, encoding="utf-8") as handle:
            text = handle.read()
    errors = check_text(text)
    for line_no, message in sorted(errors):
        where = f"line {line_no}" if line_no else "input"
        print(f"{where}: {message}", file=sys.stderr)
    if errors:
        print(f"check_prom_format: {len(errors)} error(s)", file=sys.stderr)
        return 1
    samples = sum(
        1 for line in text.splitlines() if line and not line.startswith("#")
    )
    print(f"check_prom_format: ok ({samples} samples)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
