#!/usr/bin/env python3
"""Run the update-throughput benchmark and gate on regressions.

Two modes:

  run      Execute a google-benchmark binary (default: the update-throughput
           benchmark) with JSON output and write a normalized snapshot,
           BENCH_update_throughput.json, recording items/sec per benchmark.

  compare  Diff a current snapshot against a committed baseline and exit
           nonzero if any benchmark's items/sec dropped by more than the
           threshold (default 10%). Benchmarks present in the baseline but
           missing from the current run also fail — a silently deleted
           benchmark must not pass the gate.

Typical usage:

  python3 tools/bench_compare.py run \
      --binary build/bench/bench_update_throughput \
      --out BENCH_update_throughput.json
  python3 tools/bench_compare.py compare \
      --baseline bench/baselines/BENCH_update_throughput.json \
      --current BENCH_update_throughput.json --threshold 0.10

Baselines are machine-specific: regenerate bench/baselines/ with `run` on
the benchmark host when the expected performance legitimately changes, and
commit the new snapshot alongside the change that caused it.

Stdlib only; no third-party dependencies.
"""

import argparse
import json
import os
import subprocess
import sys


def run_benchmark(binary, min_time, repetitions, bench_filter):
    """Runs a google-benchmark binary, returns its parsed JSON report."""
    cmd = [
        binary,
        "--benchmark_format=json",
        "--benchmark_min_time={}".format(min_time),
        "--benchmark_repetitions={}".format(repetitions),
    ]
    if bench_filter:
        cmd.append("--benchmark_filter={}".format(bench_filter))
    proc = subprocess.run(cmd, stdout=subprocess.PIPE, check=True)
    return json.loads(proc.stdout.decode("utf-8"))


def normalize(report):
    """Normalized snapshot: benchmark name -> metrics we gate on.

    Repetitions of the same benchmark are collapsed to the best observed
    throughput — best-of-N is the standard noise filter for throughput
    benchmarks on shared hosts, where slowdowns are one-sided (scheduler
    interference can only make a run slower, never faster).
    """
    benchmarks = {}
    for entry in report.get("benchmarks", []):
        if entry.get("run_type") == "aggregate":
            continue
        name = entry["name"].split("/repeats:")[0]
        ips = entry.get("items_per_second")
        prev = benchmarks.get(name)
        if prev is not None and prev["items_per_second"] is not None:
            if ips is None or ips <= prev["items_per_second"]:
                continue
        benchmarks[name] = {
            "items_per_second": ips,
            "real_time_ns": entry.get("real_time"),
        }
    context = report.get("context", {})
    # Prefer the harness-exported sketch_build_type: google-benchmark's
    # library_build_type describes how libbenchmark itself was compiled
    # (the distro package is often a debug build), which is not the build
    # being measured.
    build_type = context.get("sketch_build_type",
                             context.get("library_build_type"))
    return {
        "schema": "sketch-bench-snapshot-v1",
        "host": {
            "num_cpus": context.get("num_cpus"),
            "mhz_per_cpu": context.get("mhz_per_cpu"),
            "library_build_type": build_type,
            # Dispatched kernel tier ("avx2"/"scalar"), exported by the
            # harness; None for snapshots predating the SIMD tier.
            "simd_tier": context.get("sketch_simd_tier"),
        },
        "benchmarks": benchmarks,
    }


def check_host_mismatch(baseline, current, policy):
    """Reports snapshots that measured different configurations.

    A scalar-tier baseline compared against an avx2 run (or a debug
    baseline against a release run) produces ratios that say nothing
    about the change being gated. Under policy "warn" that's loud but
    non-fatal (a developer diffing across machines knows what they're
    doing); under "fail" any mismatch fails the gate — in CI a mismatch
    means the gate silently stopped measuring what the baseline measured,
    which must not pass. Policy "auto" resolves to "fail" when the CI
    environment variable is set, "warn" otherwise.

    Returns the list of mismatch descriptions.
    """
    if policy == "auto":
        policy = "fail" if os.environ.get("CI") else "warn"
    base_host = baseline.get("host", {}) or {}
    cur_host = current.get("host", {}) or {}
    mismatches = []
    for key, label in (("simd_tier", "SIMD tier"),
                       ("library_build_type", "build type")):
        base_val = base_host.get(key)
        cur_val = cur_host.get(key)
        if base_val is None or cur_val is None:
            continue  # older snapshot without the field: nothing to check
        if base_val != cur_val:
            mismatches.append(
                "{} mismatch: baseline={} current={}".format(
                    label, base_val, cur_val))
    severity = "ERROR" if policy == "fail" else "WARNING"
    for mismatch in mismatches:
        print("bench_compare: {}: {} — ratios compare different "
              "code paths".format(severity, mismatch))
    return mismatches if policy == "fail" else []


def cmd_run(args):
    report = run_benchmark(args.binary, args.min_time, args.repetitions,
                           args.filter)
    snapshot = normalize(report)
    if not snapshot["benchmarks"]:
        print("bench_compare: no benchmarks produced by {}".format(args.binary))
        return 1
    with open(args.out, "w") as fh:
        json.dump(snapshot, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print("bench_compare: wrote {} ({} benchmarks)".format(
        args.out, len(snapshot["benchmarks"])))
    return 0


def load_snapshot(path):
    with open(path) as fh:
        snapshot = json.load(fh)
    if "benchmarks" not in snapshot:
        raise SystemExit(
            "bench_compare: {} is not a benchmark snapshot".format(path))
    return snapshot


def cmd_compare(args):
    baseline_snapshot = load_snapshot(args.baseline)
    current_snapshot = load_snapshot(args.current)
    host_failures = check_host_mismatch(baseline_snapshot, current_snapshot,
                                        args.host_mismatch)
    baseline = baseline_snapshot["benchmarks"]
    current = current_snapshot["benchmarks"]
    failures = []
    rows = []
    for name in sorted(baseline):
        base_ips = baseline[name].get("items_per_second")
        if base_ips is None:
            continue  # baseline entry without a throughput counter
        cur = current.get(name)
        if cur is None or cur.get("items_per_second") is None:
            failures.append("{}: missing from current run".format(name))
            continue
        cur_ips = cur["items_per_second"]
        ratio = cur_ips / base_ips if base_ips else float("inf")
        status = "ok"
        if ratio < 1.0 - args.threshold:
            status = "REGRESSION"
            failures.append(
                "{}: {:.2f} -> {:.2f} Mitems/s ({:+.1f}%)".format(
                    name, base_ips / 1e6, cur_ips / 1e6,
                    100.0 * (ratio - 1.0)))
        rows.append((name, base_ips / 1e6, cur_ips / 1e6, ratio, status))

    name_width = max(len(r[0]) for r in rows) if rows else 20
    print("{:<{w}} {:>12} {:>12} {:>8}  {}".format(
        "benchmark", "base M/s", "cur M/s", "ratio", "status", w=name_width))
    for name, base, cur, ratio, status in rows:
        print("{:<{w}} {:>12.2f} {:>12.2f} {:>7.2f}x  {}".format(
            name, base, cur, ratio, status, w=name_width))

    if failures:
        print("\nbench_compare: {} regression(s) beyond {:.0f}%:".format(
            len(failures), 100 * args.threshold))
        for failure in failures:
            print("  " + failure)
        return 1
    if host_failures:
        print("\nbench_compare: host mismatch is fatal under "
              "--host-mismatch=fail (or auto in CI): the gate is not "
              "measuring what the baseline measured")
        return 1
    print("\nbench_compare: no regressions beyond {:.0f}% threshold".format(
        100 * args.threshold))
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="mode", required=True)

    run_parser = sub.add_parser("run", help="run benchmark, write snapshot")
    run_parser.add_argument(
        "--binary", default="build/bench/bench_update_throughput",
        help="google-benchmark binary to run")
    run_parser.add_argument(
        "--out", default="BENCH_update_throughput.json",
        help="output snapshot path")
    run_parser.add_argument(
        "--min-time", default="0.2",
        help="--benchmark_min_time per benchmark (seconds)")
    run_parser.add_argument(
        "--repetitions", type=int, default=3,
        help="repetitions per benchmark; snapshot keeps the best (default 3)")
    run_parser.add_argument(
        "--filter", default="",
        help="optional --benchmark_filter regex")
    run_parser.set_defaults(func=cmd_run)

    cmp_parser = sub.add_parser("compare", help="gate current vs baseline")
    cmp_parser.add_argument("--baseline", required=True,
                            help="committed baseline snapshot")
    cmp_parser.add_argument("--current", required=True,
                            help="snapshot from this build")
    cmp_parser.add_argument("--threshold", type=float, default=0.10,
                            help="allowed fractional drop (default 0.10)")
    cmp_parser.add_argument(
        "--host-mismatch", choices=("auto", "warn", "fail"), default="auto",
        help="policy when baseline and current snapshots disagree on SIMD "
             "tier or build type: fail the gate, warn only, or auto "
             "(fail iff the CI environment variable is set; default)")
    cmp_parser.set_defaults(func=cmd_compare)

    args = parser.parse_args()
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
