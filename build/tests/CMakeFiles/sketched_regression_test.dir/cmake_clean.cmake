file(REMOVE_RECURSE
  "CMakeFiles/sketched_regression_test.dir/dimred/sketched_regression_test.cc.o"
  "CMakeFiles/sketched_regression_test.dir/dimred/sketched_regression_test.cc.o.d"
  "sketched_regression_test"
  "sketched_regression_test.pdb"
  "sketched_regression_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sketched_regression_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
