# Empty dependencies file for sketched_regression_test.
# This may be replaced when dependencies are built.
