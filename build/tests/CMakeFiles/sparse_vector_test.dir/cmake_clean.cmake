file(REMOVE_RECURSE
  "CMakeFiles/sparse_vector_test.dir/linalg/sparse_vector_test.cc.o"
  "CMakeFiles/sparse_vector_test.dir/linalg/sparse_vector_test.cc.o.d"
  "sparse_vector_test"
  "sparse_vector_test.pdb"
  "sparse_vector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_vector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
