# Empty dependencies file for sparse_vector_test.
# This may be replaced when dependencies are built.
