file(REMOVE_RECURSE
  "CMakeFiles/count_min_test.dir/sketch/count_min_test.cc.o"
  "CMakeFiles/count_min_test.dir/sketch/count_min_test.cc.o.d"
  "count_min_test"
  "count_min_test.pdb"
  "count_min_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/count_min_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
