# Empty compiler generated dependencies file for count_sketch_test.
# This may be replaced when dependencies are built.
