file(REMOVE_RECURSE
  "CMakeFiles/count_sketch_test.dir/sketch/count_sketch_test.cc.o"
  "CMakeFiles/count_sketch_test.dir/sketch/count_sketch_test.cc.o.d"
  "count_sketch_test"
  "count_sketch_test.pdb"
  "count_sketch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/count_sketch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
