# Empty compiler generated dependencies file for spectrum_utils_test.
# This may be replaced when dependencies are built.
