file(REMOVE_RECURSE
  "CMakeFiles/spectrum_utils_test.dir/sfft/spectrum_utils_test.cc.o"
  "CMakeFiles/spectrum_utils_test.dir/sfft/spectrum_utils_test.cc.o.d"
  "spectrum_utils_test"
  "spectrum_utils_test.pdb"
  "spectrum_utils_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spectrum_utils_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
