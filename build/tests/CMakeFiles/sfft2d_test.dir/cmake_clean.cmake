file(REMOVE_RECURSE
  "CMakeFiles/sfft2d_test.dir/sfft/sfft2d_test.cc.o"
  "CMakeFiles/sfft2d_test.dir/sfft/sfft2d_test.cc.o.d"
  "sfft2d_test"
  "sfft2d_test.pdb"
  "sfft2d_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfft2d_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
