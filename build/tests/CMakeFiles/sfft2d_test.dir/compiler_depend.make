# Empty compiler generated dependencies file for sfft2d_test.
# This may be replaced when dependencies are built.
