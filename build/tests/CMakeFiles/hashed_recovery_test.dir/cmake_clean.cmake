file(REMOVE_RECURSE
  "CMakeFiles/hashed_recovery_test.dir/cs/hashed_recovery_test.cc.o"
  "CMakeFiles/hashed_recovery_test.dir/cs/hashed_recovery_test.cc.o.d"
  "hashed_recovery_test"
  "hashed_recovery_test.pdb"
  "hashed_recovery_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hashed_recovery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
