# Empty compiler generated dependencies file for hashed_recovery_test.
# This may be replaced when dependencies are built.
