# Empty compiler generated dependencies file for kwise_hash_test.
# This may be replaced when dependencies are built.
