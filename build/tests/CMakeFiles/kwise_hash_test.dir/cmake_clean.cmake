file(REMOVE_RECURSE
  "CMakeFiles/kwise_hash_test.dir/hash/kwise_hash_test.cc.o"
  "CMakeFiles/kwise_hash_test.dir/hash/kwise_hash_test.cc.o.d"
  "kwise_hash_test"
  "kwise_hash_test.pdb"
  "kwise_hash_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kwise_hash_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
