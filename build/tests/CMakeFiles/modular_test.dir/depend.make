# Empty dependencies file for modular_test.
# This may be replaced when dependencies are built.
