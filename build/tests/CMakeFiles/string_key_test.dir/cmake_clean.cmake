file(REMOVE_RECURSE
  "CMakeFiles/string_key_test.dir/hash/string_key_test.cc.o"
  "CMakeFiles/string_key_test.dir/hash/string_key_test.cc.o.d"
  "string_key_test"
  "string_key_test.pdb"
  "string_key_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/string_key_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
