# Empty dependencies file for string_key_test.
# This may be replaced when dependencies are built.
