file(REMOVE_RECURSE
  "CMakeFiles/space_saving_test.dir/sketch/space_saving_test.cc.o"
  "CMakeFiles/space_saving_test.dir/sketch/space_saving_test.cc.o.d"
  "space_saving_test"
  "space_saving_test.pdb"
  "space_saving_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/space_saving_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
