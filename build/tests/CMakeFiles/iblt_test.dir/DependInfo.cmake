
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sketch/iblt_test.cc" "tests/CMakeFiles/iblt_test.dir/sketch/iblt_test.cc.o" "gcc" "tests/CMakeFiles/iblt_test.dir/sketch/iblt_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sketch_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/sketch_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/sketch_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/sketch_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/sketch_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/sketch/CMakeFiles/sketch_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cs/CMakeFiles/sketch_cs.dir/DependInfo.cmake"
  "/root/repo/build/src/dimred/CMakeFiles/sketch_dimred.dir/DependInfo.cmake"
  "/root/repo/build/src/sfft/CMakeFiles/sketch_sfft.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
