# Empty dependencies file for iblt_test.
# This may be replaced when dependencies are built.
