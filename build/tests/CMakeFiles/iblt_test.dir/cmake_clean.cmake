file(REMOVE_RECURSE
  "CMakeFiles/iblt_test.dir/sketch/iblt_test.cc.o"
  "CMakeFiles/iblt_test.dir/sketch/iblt_test.cc.o.d"
  "iblt_test"
  "iblt_test.pdb"
  "iblt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iblt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
