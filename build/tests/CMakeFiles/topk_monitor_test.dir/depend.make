# Empty dependencies file for topk_monitor_test.
# This may be replaced when dependencies are built.
