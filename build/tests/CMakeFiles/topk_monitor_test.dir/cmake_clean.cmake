file(REMOVE_RECURSE
  "CMakeFiles/topk_monitor_test.dir/sketch/topk_monitor_test.cc.o"
  "CMakeFiles/topk_monitor_test.dir/sketch/topk_monitor_test.cc.o.d"
  "topk_monitor_test"
  "topk_monitor_test.pdb"
  "topk_monitor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topk_monitor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
