# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for sketched_lowrank_test.
