# Empty compiler generated dependencies file for sketched_lowrank_test.
# This may be replaced when dependencies are built.
