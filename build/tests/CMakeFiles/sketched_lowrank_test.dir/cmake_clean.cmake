file(REMOVE_RECURSE
  "CMakeFiles/sketched_lowrank_test.dir/dimred/sketched_lowrank_test.cc.o"
  "CMakeFiles/sketched_lowrank_test.dir/dimred/sketched_lowrank_test.cc.o.d"
  "sketched_lowrank_test"
  "sketched_lowrank_test.pdb"
  "sketched_lowrank_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sketched_lowrank_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
