file(REMOVE_RECURSE
  "CMakeFiles/traffic_model_test.dir/stream/traffic_model_test.cc.o"
  "CMakeFiles/traffic_model_test.dir/stream/traffic_model_test.cc.o.d"
  "traffic_model_test"
  "traffic_model_test.pdb"
  "traffic_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
