file(REMOVE_RECURSE
  "CMakeFiles/cosamp_test.dir/cs/cosamp_test.cc.o"
  "CMakeFiles/cosamp_test.dir/cs/cosamp_test.cc.o.d"
  "cosamp_test"
  "cosamp_test.pdb"
  "cosamp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cosamp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
