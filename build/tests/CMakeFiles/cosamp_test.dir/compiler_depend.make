# Empty compiler generated dependencies file for cosamp_test.
# This may be replaced when dependencies are built.
