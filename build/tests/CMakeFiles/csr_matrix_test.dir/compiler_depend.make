# Empty compiler generated dependencies file for csr_matrix_test.
# This may be replaced when dependencies are built.
