file(REMOVE_RECURSE
  "CMakeFiles/csr_matrix_test.dir/linalg/csr_matrix_test.cc.o"
  "CMakeFiles/csr_matrix_test.dir/linalg/csr_matrix_test.cc.o.d"
  "csr_matrix_test"
  "csr_matrix_test.pdb"
  "csr_matrix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csr_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
