# Empty dependencies file for sparse_wht_test.
# This may be replaced when dependencies are built.
