file(REMOVE_RECURSE
  "CMakeFiles/sparse_wht_test.dir/sfft/sparse_wht_test.cc.o"
  "CMakeFiles/sparse_wht_test.dir/sfft/sparse_wht_test.cc.o.d"
  "sparse_wht_test"
  "sparse_wht_test.pdb"
  "sparse_wht_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_wht_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
