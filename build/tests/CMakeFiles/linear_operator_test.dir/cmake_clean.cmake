file(REMOVE_RECURSE
  "CMakeFiles/linear_operator_test.dir/cs/linear_operator_test.cc.o"
  "CMakeFiles/linear_operator_test.dir/cs/linear_operator_test.cc.o.d"
  "linear_operator_test"
  "linear_operator_test.pdb"
  "linear_operator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linear_operator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
