# Empty compiler generated dependencies file for linear_operator_test.
# This may be replaced when dependencies are built.
