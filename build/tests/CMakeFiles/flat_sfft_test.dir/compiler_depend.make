# Empty compiler generated dependencies file for flat_sfft_test.
# This may be replaced when dependencies are built.
