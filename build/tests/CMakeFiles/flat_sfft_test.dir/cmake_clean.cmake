file(REMOVE_RECURSE
  "CMakeFiles/flat_sfft_test.dir/sfft/flat_sfft_test.cc.o"
  "CMakeFiles/flat_sfft_test.dir/sfft/flat_sfft_test.cc.o.d"
  "flat_sfft_test"
  "flat_sfft_test.pdb"
  "flat_sfft_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flat_sfft_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
