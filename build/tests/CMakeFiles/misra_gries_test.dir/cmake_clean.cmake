file(REMOVE_RECURSE
  "CMakeFiles/misra_gries_test.dir/sketch/misra_gries_test.cc.o"
  "CMakeFiles/misra_gries_test.dir/sketch/misra_gries_test.cc.o.d"
  "misra_gries_test"
  "misra_gries_test.pdb"
  "misra_gries_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/misra_gries_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
