# Empty dependencies file for misra_gries_test.
# This may be replaced when dependencies are built.
