file(REMOVE_RECURSE
  "CMakeFiles/ensembles_test.dir/cs/ensembles_test.cc.o"
  "CMakeFiles/ensembles_test.dir/cs/ensembles_test.cc.o.d"
  "ensembles_test"
  "ensembles_test.pdb"
  "ensembles_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ensembles_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
