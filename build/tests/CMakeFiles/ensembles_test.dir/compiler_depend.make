# Empty compiler generated dependencies file for ensembles_test.
# This may be replaced when dependencies are built.
