# Empty dependencies file for smp_test.
# This may be replaced when dependencies are built.
