file(REMOVE_RECURSE
  "CMakeFiles/smp_test.dir/cs/smp_test.cc.o"
  "CMakeFiles/smp_test.dir/cs/smp_test.cc.o.d"
  "smp_test"
  "smp_test.pdb"
  "smp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
