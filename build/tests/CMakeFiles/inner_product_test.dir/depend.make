# Empty dependencies file for inner_product_test.
# This may be replaced when dependencies are built.
