file(REMOVE_RECURSE
  "CMakeFiles/inner_product_test.dir/sketch/inner_product_test.cc.o"
  "CMakeFiles/inner_product_test.dir/sketch/inner_product_test.cc.o.d"
  "inner_product_test"
  "inner_product_test.pdb"
  "inner_product_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inner_product_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
