file(REMOVE_RECURSE
  "CMakeFiles/iht_test.dir/cs/iht_test.cc.o"
  "CMakeFiles/iht_test.dir/cs/iht_test.cc.o.d"
  "iht_test"
  "iht_test.pdb"
  "iht_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iht_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
