# Empty dependencies file for iht_test.
# This may be replaced when dependencies are built.
