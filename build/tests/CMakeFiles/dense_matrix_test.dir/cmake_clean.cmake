file(REMOVE_RECURSE
  "CMakeFiles/dense_matrix_test.dir/linalg/dense_matrix_test.cc.o"
  "CMakeFiles/dense_matrix_test.dir/linalg/dense_matrix_test.cc.o.d"
  "dense_matrix_test"
  "dense_matrix_test.pdb"
  "dense_matrix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dense_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
