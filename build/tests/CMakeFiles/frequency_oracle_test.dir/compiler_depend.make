# Empty compiler generated dependencies file for frequency_oracle_test.
# This may be replaced when dependencies are built.
