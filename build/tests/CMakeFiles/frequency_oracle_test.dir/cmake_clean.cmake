file(REMOVE_RECURSE
  "CMakeFiles/frequency_oracle_test.dir/stream/frequency_oracle_test.cc.o"
  "CMakeFiles/frequency_oracle_test.dir/stream/frequency_oracle_test.cc.o.d"
  "frequency_oracle_test"
  "frequency_oracle_test.pdb"
  "frequency_oracle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frequency_oracle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
