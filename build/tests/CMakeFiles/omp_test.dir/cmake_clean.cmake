file(REMOVE_RECURSE
  "CMakeFiles/omp_test.dir/cs/omp_test.cc.o"
  "CMakeFiles/omp_test.dir/cs/omp_test.cc.o.d"
  "omp_test"
  "omp_test.pdb"
  "omp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
