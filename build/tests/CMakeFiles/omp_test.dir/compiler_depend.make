# Empty compiler generated dependencies file for omp_test.
# This may be replaced when dependencies are built.
