# Empty compiler generated dependencies file for symmetric_eigen_test.
# This may be replaced when dependencies are built.
