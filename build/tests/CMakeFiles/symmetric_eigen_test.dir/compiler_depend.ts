# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for symmetric_eigen_test.
