file(REMOVE_RECURSE
  "CMakeFiles/symmetric_eigen_test.dir/linalg/symmetric_eigen_test.cc.o"
  "CMakeFiles/symmetric_eigen_test.dir/linalg/symmetric_eigen_test.cc.o.d"
  "symmetric_eigen_test"
  "symmetric_eigen_test.pdb"
  "symmetric_eigen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symmetric_eigen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
