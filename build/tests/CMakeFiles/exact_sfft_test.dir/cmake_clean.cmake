file(REMOVE_RECURSE
  "CMakeFiles/exact_sfft_test.dir/sfft/exact_sfft_test.cc.o"
  "CMakeFiles/exact_sfft_test.dir/sfft/exact_sfft_test.cc.o.d"
  "exact_sfft_test"
  "exact_sfft_test.pdb"
  "exact_sfft_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exact_sfft_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
