# Empty dependencies file for exact_sfft_test.
# This may be replaced when dependencies are built.
