file(REMOVE_RECURSE
  "CMakeFiles/crt_sfft_test.dir/sfft/crt_sfft_test.cc.o"
  "CMakeFiles/crt_sfft_test.dir/sfft/crt_sfft_test.cc.o.d"
  "crt_sfft_test"
  "crt_sfft_test.pdb"
  "crt_sfft_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crt_sfft_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
