# Empty compiler generated dependencies file for crt_sfft_test.
# This may be replaced when dependencies are built.
