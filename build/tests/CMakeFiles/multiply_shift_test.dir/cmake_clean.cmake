file(REMOVE_RECURSE
  "CMakeFiles/multiply_shift_test.dir/hash/multiply_shift_test.cc.o"
  "CMakeFiles/multiply_shift_test.dir/hash/multiply_shift_test.cc.o.d"
  "multiply_shift_test"
  "multiply_shift_test.pdb"
  "multiply_shift_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiply_shift_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
