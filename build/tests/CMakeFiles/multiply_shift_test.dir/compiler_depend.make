# Empty compiler generated dependencies file for multiply_shift_test.
# This may be replaced when dependencies are built.
