file(REMOVE_RECURSE
  "CMakeFiles/counter_braids_test.dir/sketch/counter_braids_test.cc.o"
  "CMakeFiles/counter_braids_test.dir/sketch/counter_braids_test.cc.o.d"
  "counter_braids_test"
  "counter_braids_test.pdb"
  "counter_braids_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/counter_braids_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
