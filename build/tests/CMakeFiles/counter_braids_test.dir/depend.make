# Empty dependencies file for counter_braids_test.
# This may be replaced when dependencies are built.
