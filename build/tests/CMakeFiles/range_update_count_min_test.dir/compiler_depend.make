# Empty compiler generated dependencies file for range_update_count_min_test.
# This may be replaced when dependencies are built.
