file(REMOVE_RECURSE
  "CMakeFiles/range_update_count_min_test.dir/sketch/range_update_count_min_test.cc.o"
  "CMakeFiles/range_update_count_min_test.dir/sketch/range_update_count_min_test.cc.o.d"
  "range_update_count_min_test"
  "range_update_count_min_test.pdb"
  "range_update_count_min_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/range_update_count_min_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
