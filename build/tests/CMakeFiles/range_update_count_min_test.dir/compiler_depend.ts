# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for range_update_count_min_test.
