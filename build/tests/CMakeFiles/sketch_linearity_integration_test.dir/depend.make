# Empty dependencies file for sketch_linearity_integration_test.
# This may be replaced when dependencies are built.
