file(REMOVE_RECURSE
  "CMakeFiles/sketch_linearity_integration_test.dir/integration/sketch_linearity_integration_test.cc.o"
  "CMakeFiles/sketch_linearity_integration_test.dir/integration/sketch_linearity_integration_test.cc.o.d"
  "sketch_linearity_integration_test"
  "sketch_linearity_integration_test.pdb"
  "sketch_linearity_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sketch_linearity_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
