# Empty dependencies file for ssmp_test.
# This may be replaced when dependencies are built.
