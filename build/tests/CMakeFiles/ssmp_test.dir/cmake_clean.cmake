file(REMOVE_RECURSE
  "CMakeFiles/ssmp_test.dir/cs/ssmp_test.cc.o"
  "CMakeFiles/ssmp_test.dir/cs/ssmp_test.cc.o.d"
  "ssmp_test"
  "ssmp_test.pdb"
  "ssmp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssmp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
