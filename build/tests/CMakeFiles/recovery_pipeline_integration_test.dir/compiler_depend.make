# Empty compiler generated dependencies file for recovery_pipeline_integration_test.
# This may be replaced when dependencies are built.
