file(REMOVE_RECURSE
  "CMakeFiles/recovery_pipeline_integration_test.dir/integration/recovery_pipeline_integration_test.cc.o"
  "CMakeFiles/recovery_pipeline_integration_test.dir/integration/recovery_pipeline_integration_test.cc.o.d"
  "recovery_pipeline_integration_test"
  "recovery_pipeline_integration_test.pdb"
  "recovery_pipeline_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recovery_pipeline_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
