file(REMOVE_RECURSE
  "CMakeFiles/jl_transform_test.dir/dimred/jl_transform_test.cc.o"
  "CMakeFiles/jl_transform_test.dir/dimred/jl_transform_test.cc.o.d"
  "jl_transform_test"
  "jl_transform_test.pdb"
  "jl_transform_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jl_transform_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
