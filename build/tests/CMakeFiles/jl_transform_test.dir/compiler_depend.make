# Empty compiler generated dependencies file for jl_transform_test.
# This may be replaced when dependencies are built.
