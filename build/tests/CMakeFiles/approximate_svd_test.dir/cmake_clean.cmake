file(REMOVE_RECURSE
  "CMakeFiles/approximate_svd_test.dir/dimred/approximate_svd_test.cc.o"
  "CMakeFiles/approximate_svd_test.dir/dimred/approximate_svd_test.cc.o.d"
  "approximate_svd_test"
  "approximate_svd_test.pdb"
  "approximate_svd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/approximate_svd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
