# Empty dependencies file for approximate_svd_test.
# This may be replaced when dependencies are built.
