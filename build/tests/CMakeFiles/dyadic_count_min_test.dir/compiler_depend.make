# Empty compiler generated dependencies file for dyadic_count_min_test.
# This may be replaced when dependencies are built.
