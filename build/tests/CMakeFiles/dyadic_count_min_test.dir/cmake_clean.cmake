file(REMOVE_RECURSE
  "CMakeFiles/dyadic_count_min_test.dir/sketch/dyadic_count_min_test.cc.o"
  "CMakeFiles/dyadic_count_min_test.dir/sketch/dyadic_count_min_test.cc.o.d"
  "dyadic_count_min_test"
  "dyadic_count_min_test.pdb"
  "dyadic_count_min_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dyadic_count_min_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
