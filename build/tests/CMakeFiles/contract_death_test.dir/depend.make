# Empty dependencies file for contract_death_test.
# This may be replaced when dependencies are built.
