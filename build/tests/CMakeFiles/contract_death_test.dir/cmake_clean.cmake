file(REMOVE_RECURSE
  "CMakeFiles/contract_death_test.dir/integration/contract_death_test.cc.o"
  "CMakeFiles/contract_death_test.dir/integration/contract_death_test.cc.o.d"
  "contract_death_test"
  "contract_death_test.pdb"
  "contract_death_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contract_death_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
