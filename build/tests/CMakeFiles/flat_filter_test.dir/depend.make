# Empty dependencies file for flat_filter_test.
# This may be replaced when dependencies are built.
