file(REMOVE_RECURSE
  "CMakeFiles/flat_filter_test.dir/sfft/flat_filter_test.cc.o"
  "CMakeFiles/flat_filter_test.dir/sfft/flat_filter_test.cc.o.d"
  "flat_filter_test"
  "flat_filter_test.pdb"
  "flat_filter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flat_filter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
