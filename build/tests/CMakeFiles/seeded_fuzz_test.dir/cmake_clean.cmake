file(REMOVE_RECURSE
  "CMakeFiles/seeded_fuzz_test.dir/integration/seeded_fuzz_test.cc.o"
  "CMakeFiles/seeded_fuzz_test.dir/integration/seeded_fuzz_test.cc.o.d"
  "seeded_fuzz_test"
  "seeded_fuzz_test.pdb"
  "seeded_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seeded_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
