# Empty compiler generated dependencies file for seeded_fuzz_test.
# This may be replaced when dependencies are built.
