# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for bit_test_recovery_test.
