# Empty dependencies file for bit_test_recovery_test.
# This may be replaced when dependencies are built.
