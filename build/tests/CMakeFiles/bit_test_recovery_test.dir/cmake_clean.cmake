file(REMOVE_RECURSE
  "CMakeFiles/bit_test_recovery_test.dir/cs/bit_test_recovery_test.cc.o"
  "CMakeFiles/bit_test_recovery_test.dir/cs/bit_test_recovery_test.cc.o.d"
  "bit_test_recovery_test"
  "bit_test_recovery_test.pdb"
  "bit_test_recovery_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bit_test_recovery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
