# Empty dependencies file for stream_summary_test.
# This may be replaced when dependencies are built.
