file(REMOVE_RECURSE
  "CMakeFiles/stream_summary_test.dir/sketch/stream_summary_test.cc.o"
  "CMakeFiles/stream_summary_test.dir/sketch/stream_summary_test.cc.o.d"
  "stream_summary_test"
  "stream_summary_test.pdb"
  "stream_summary_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stream_summary_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
