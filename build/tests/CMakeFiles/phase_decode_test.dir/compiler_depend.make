# Empty compiler generated dependencies file for phase_decode_test.
# This may be replaced when dependencies are built.
