file(REMOVE_RECURSE
  "CMakeFiles/phase_decode_test.dir/sfft/phase_decode_test.cc.o"
  "CMakeFiles/phase_decode_test.dir/sfft/phase_decode_test.cc.o.d"
  "phase_decode_test"
  "phase_decode_test.pdb"
  "phase_decode_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phase_decode_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
