file(REMOVE_RECURSE
  "CMakeFiles/feature_hashing_test.dir/dimred/feature_hashing_test.cc.o"
  "CMakeFiles/feature_hashing_test.dir/dimred/feature_hashing_test.cc.o.d"
  "feature_hashing_test"
  "feature_hashing_test.pdb"
  "feature_hashing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feature_hashing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
