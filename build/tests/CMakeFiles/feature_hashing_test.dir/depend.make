# Empty dependencies file for feature_hashing_test.
# This may be replaced when dependencies are built.
