file(REMOVE_RECURSE
  "CMakeFiles/ams_sketch_test.dir/sketch/ams_sketch_test.cc.o"
  "CMakeFiles/ams_sketch_test.dir/sketch/ams_sketch_test.cc.o.d"
  "ams_sketch_test"
  "ams_sketch_test.pdb"
  "ams_sketch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ams_sketch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
