# Empty compiler generated dependencies file for ams_sketch_test.
# This may be replaced when dependencies are built.
