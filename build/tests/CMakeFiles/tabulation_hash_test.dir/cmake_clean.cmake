file(REMOVE_RECURSE
  "CMakeFiles/tabulation_hash_test.dir/hash/tabulation_hash_test.cc.o"
  "CMakeFiles/tabulation_hash_test.dir/hash/tabulation_hash_test.cc.o.d"
  "tabulation_hash_test"
  "tabulation_hash_test.pdb"
  "tabulation_hash_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tabulation_hash_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
