# Empty dependencies file for tabulation_hash_test.
# This may be replaced when dependencies are built.
