file(REMOVE_RECURSE
  "CMakeFiles/prng_test.dir/common/prng_test.cc.o"
  "CMakeFiles/prng_test.dir/common/prng_test.cc.o.d"
  "prng_test"
  "prng_test.pdb"
  "prng_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prng_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
