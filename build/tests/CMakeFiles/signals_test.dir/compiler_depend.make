# Empty compiler generated dependencies file for signals_test.
# This may be replaced when dependencies are built.
