file(REMOVE_RECURSE
  "CMakeFiles/signals_test.dir/cs/signals_test.cc.o"
  "CMakeFiles/signals_test.dir/cs/signals_test.cc.o.d"
  "signals_test"
  "signals_test.pdb"
  "signals_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/signals_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
