file(REMOVE_RECURSE
  "CMakeFiles/byte_buffer_test.dir/common/byte_buffer_test.cc.o"
  "CMakeFiles/byte_buffer_test.dir/common/byte_buffer_test.cc.o.d"
  "byte_buffer_test"
  "byte_buffer_test.pdb"
  "byte_buffer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/byte_buffer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
