# Empty compiler generated dependencies file for byte_buffer_test.
# This may be replaced when dependencies are built.
