file(REMOVE_RECURSE
  "CMakeFiles/stream_to_sketch_integration_test.dir/integration/stream_to_sketch_integration_test.cc.o"
  "CMakeFiles/stream_to_sketch_integration_test.dir/integration/stream_to_sketch_integration_test.cc.o.d"
  "stream_to_sketch_integration_test"
  "stream_to_sketch_integration_test.pdb"
  "stream_to_sketch_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stream_to_sketch_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
