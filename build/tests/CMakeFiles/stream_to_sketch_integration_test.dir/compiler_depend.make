# Empty compiler generated dependencies file for stream_to_sketch_integration_test.
# This may be replaced when dependencies are built.
