file(REMOVE_RECURSE
  "CMakeFiles/spectral_bloom_test.dir/sketch/spectral_bloom_test.cc.o"
  "CMakeFiles/spectral_bloom_test.dir/sketch/spectral_bloom_test.cc.o.d"
  "spectral_bloom_test"
  "spectral_bloom_test.pdb"
  "spectral_bloom_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spectral_bloom_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
