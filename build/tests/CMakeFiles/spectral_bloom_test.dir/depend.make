# Empty dependencies file for spectral_bloom_test.
# This may be replaced when dependencies are built.
