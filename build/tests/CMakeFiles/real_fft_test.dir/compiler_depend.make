# Empty compiler generated dependencies file for real_fft_test.
# This may be replaced when dependencies are built.
