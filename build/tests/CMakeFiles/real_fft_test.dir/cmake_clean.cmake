file(REMOVE_RECURSE
  "CMakeFiles/real_fft_test.dir/fft/real_fft_test.cc.o"
  "CMakeFiles/real_fft_test.dir/fft/real_fft_test.cc.o.d"
  "real_fft_test"
  "real_fft_test.pdb"
  "real_fft_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/real_fft_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
