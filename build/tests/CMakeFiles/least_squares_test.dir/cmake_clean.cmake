file(REMOVE_RECURSE
  "CMakeFiles/least_squares_test.dir/linalg/least_squares_test.cc.o"
  "CMakeFiles/least_squares_test.dir/linalg/least_squares_test.cc.o.d"
  "least_squares_test"
  "least_squares_test.pdb"
  "least_squares_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/least_squares_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
