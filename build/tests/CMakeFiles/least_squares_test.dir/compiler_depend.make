# Empty compiler generated dependencies file for least_squares_test.
# This may be replaced when dependencies are built.
