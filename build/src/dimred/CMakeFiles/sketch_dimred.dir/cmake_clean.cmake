file(REMOVE_RECURSE
  "CMakeFiles/sketch_dimred.dir/approximate_svd.cc.o"
  "CMakeFiles/sketch_dimred.dir/approximate_svd.cc.o.d"
  "CMakeFiles/sketch_dimred.dir/feature_hashing.cc.o"
  "CMakeFiles/sketch_dimred.dir/feature_hashing.cc.o.d"
  "CMakeFiles/sketch_dimred.dir/jl_transform.cc.o"
  "CMakeFiles/sketch_dimred.dir/jl_transform.cc.o.d"
  "CMakeFiles/sketch_dimred.dir/sketched_lowrank.cc.o"
  "CMakeFiles/sketch_dimred.dir/sketched_lowrank.cc.o.d"
  "CMakeFiles/sketch_dimred.dir/sketched_regression.cc.o"
  "CMakeFiles/sketch_dimred.dir/sketched_regression.cc.o.d"
  "libsketch_dimred.a"
  "libsketch_dimred.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sketch_dimred.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
