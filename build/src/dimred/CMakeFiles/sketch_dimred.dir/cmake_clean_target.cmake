file(REMOVE_RECURSE
  "libsketch_dimred.a"
)
