
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dimred/approximate_svd.cc" "src/dimred/CMakeFiles/sketch_dimred.dir/approximate_svd.cc.o" "gcc" "src/dimred/CMakeFiles/sketch_dimred.dir/approximate_svd.cc.o.d"
  "/root/repo/src/dimred/feature_hashing.cc" "src/dimred/CMakeFiles/sketch_dimred.dir/feature_hashing.cc.o" "gcc" "src/dimred/CMakeFiles/sketch_dimred.dir/feature_hashing.cc.o.d"
  "/root/repo/src/dimred/jl_transform.cc" "src/dimred/CMakeFiles/sketch_dimred.dir/jl_transform.cc.o" "gcc" "src/dimred/CMakeFiles/sketch_dimred.dir/jl_transform.cc.o.d"
  "/root/repo/src/dimred/sketched_lowrank.cc" "src/dimred/CMakeFiles/sketch_dimred.dir/sketched_lowrank.cc.o" "gcc" "src/dimred/CMakeFiles/sketch_dimred.dir/sketched_lowrank.cc.o.d"
  "/root/repo/src/dimred/sketched_regression.cc" "src/dimred/CMakeFiles/sketch_dimred.dir/sketched_regression.cc.o" "gcc" "src/dimred/CMakeFiles/sketch_dimred.dir/sketched_regression.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sketch_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/sketch_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/sketch_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
