# Empty dependencies file for sketch_dimred.
# This may be replaced when dependencies are built.
