# Empty dependencies file for sketch_core.
# This may be replaced when dependencies are built.
