file(REMOVE_RECURSE
  "libsketch_core.a"
)
