
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sketch/ams_sketch.cc" "src/sketch/CMakeFiles/sketch_core.dir/ams_sketch.cc.o" "gcc" "src/sketch/CMakeFiles/sketch_core.dir/ams_sketch.cc.o.d"
  "/root/repo/src/sketch/bloom_filter.cc" "src/sketch/CMakeFiles/sketch_core.dir/bloom_filter.cc.o" "gcc" "src/sketch/CMakeFiles/sketch_core.dir/bloom_filter.cc.o.d"
  "/root/repo/src/sketch/count_min.cc" "src/sketch/CMakeFiles/sketch_core.dir/count_min.cc.o" "gcc" "src/sketch/CMakeFiles/sketch_core.dir/count_min.cc.o.d"
  "/root/repo/src/sketch/count_sketch.cc" "src/sketch/CMakeFiles/sketch_core.dir/count_sketch.cc.o" "gcc" "src/sketch/CMakeFiles/sketch_core.dir/count_sketch.cc.o.d"
  "/root/repo/src/sketch/counter_braids.cc" "src/sketch/CMakeFiles/sketch_core.dir/counter_braids.cc.o" "gcc" "src/sketch/CMakeFiles/sketch_core.dir/counter_braids.cc.o.d"
  "/root/repo/src/sketch/dyadic_count_min.cc" "src/sketch/CMakeFiles/sketch_core.dir/dyadic_count_min.cc.o" "gcc" "src/sketch/CMakeFiles/sketch_core.dir/dyadic_count_min.cc.o.d"
  "/root/repo/src/sketch/iblt.cc" "src/sketch/CMakeFiles/sketch_core.dir/iblt.cc.o" "gcc" "src/sketch/CMakeFiles/sketch_core.dir/iblt.cc.o.d"
  "/root/repo/src/sketch/misra_gries.cc" "src/sketch/CMakeFiles/sketch_core.dir/misra_gries.cc.o" "gcc" "src/sketch/CMakeFiles/sketch_core.dir/misra_gries.cc.o.d"
  "/root/repo/src/sketch/range_update_count_min.cc" "src/sketch/CMakeFiles/sketch_core.dir/range_update_count_min.cc.o" "gcc" "src/sketch/CMakeFiles/sketch_core.dir/range_update_count_min.cc.o.d"
  "/root/repo/src/sketch/space_saving.cc" "src/sketch/CMakeFiles/sketch_core.dir/space_saving.cc.o" "gcc" "src/sketch/CMakeFiles/sketch_core.dir/space_saving.cc.o.d"
  "/root/repo/src/sketch/spectral_bloom.cc" "src/sketch/CMakeFiles/sketch_core.dir/spectral_bloom.cc.o" "gcc" "src/sketch/CMakeFiles/sketch_core.dir/spectral_bloom.cc.o.d"
  "/root/repo/src/sketch/stream_summary.cc" "src/sketch/CMakeFiles/sketch_core.dir/stream_summary.cc.o" "gcc" "src/sketch/CMakeFiles/sketch_core.dir/stream_summary.cc.o.d"
  "/root/repo/src/sketch/topk_monitor.cc" "src/sketch/CMakeFiles/sketch_core.dir/topk_monitor.cc.o" "gcc" "src/sketch/CMakeFiles/sketch_core.dir/topk_monitor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sketch_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/sketch_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/sketch_stream.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
