file(REMOVE_RECURSE
  "CMakeFiles/sketch_core.dir/ams_sketch.cc.o"
  "CMakeFiles/sketch_core.dir/ams_sketch.cc.o.d"
  "CMakeFiles/sketch_core.dir/bloom_filter.cc.o"
  "CMakeFiles/sketch_core.dir/bloom_filter.cc.o.d"
  "CMakeFiles/sketch_core.dir/count_min.cc.o"
  "CMakeFiles/sketch_core.dir/count_min.cc.o.d"
  "CMakeFiles/sketch_core.dir/count_sketch.cc.o"
  "CMakeFiles/sketch_core.dir/count_sketch.cc.o.d"
  "CMakeFiles/sketch_core.dir/counter_braids.cc.o"
  "CMakeFiles/sketch_core.dir/counter_braids.cc.o.d"
  "CMakeFiles/sketch_core.dir/dyadic_count_min.cc.o"
  "CMakeFiles/sketch_core.dir/dyadic_count_min.cc.o.d"
  "CMakeFiles/sketch_core.dir/iblt.cc.o"
  "CMakeFiles/sketch_core.dir/iblt.cc.o.d"
  "CMakeFiles/sketch_core.dir/misra_gries.cc.o"
  "CMakeFiles/sketch_core.dir/misra_gries.cc.o.d"
  "CMakeFiles/sketch_core.dir/range_update_count_min.cc.o"
  "CMakeFiles/sketch_core.dir/range_update_count_min.cc.o.d"
  "CMakeFiles/sketch_core.dir/space_saving.cc.o"
  "CMakeFiles/sketch_core.dir/space_saving.cc.o.d"
  "CMakeFiles/sketch_core.dir/spectral_bloom.cc.o"
  "CMakeFiles/sketch_core.dir/spectral_bloom.cc.o.d"
  "CMakeFiles/sketch_core.dir/stream_summary.cc.o"
  "CMakeFiles/sketch_core.dir/stream_summary.cc.o.d"
  "CMakeFiles/sketch_core.dir/topk_monitor.cc.o"
  "CMakeFiles/sketch_core.dir/topk_monitor.cc.o.d"
  "libsketch_core.a"
  "libsketch_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sketch_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
