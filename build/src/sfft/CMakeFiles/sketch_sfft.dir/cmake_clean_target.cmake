file(REMOVE_RECURSE
  "libsketch_sfft.a"
)
