file(REMOVE_RECURSE
  "CMakeFiles/sketch_sfft.dir/crt_sfft.cc.o"
  "CMakeFiles/sketch_sfft.dir/crt_sfft.cc.o.d"
  "CMakeFiles/sketch_sfft.dir/flat_filter.cc.o"
  "CMakeFiles/sketch_sfft.dir/flat_filter.cc.o.d"
  "CMakeFiles/sketch_sfft.dir/sfft.cc.o"
  "CMakeFiles/sketch_sfft.dir/sfft.cc.o.d"
  "CMakeFiles/sketch_sfft.dir/sfft2d.cc.o"
  "CMakeFiles/sketch_sfft.dir/sfft2d.cc.o.d"
  "CMakeFiles/sketch_sfft.dir/sparse_wht.cc.o"
  "CMakeFiles/sketch_sfft.dir/sparse_wht.cc.o.d"
  "CMakeFiles/sketch_sfft.dir/spectrum_utils.cc.o"
  "CMakeFiles/sketch_sfft.dir/spectrum_utils.cc.o.d"
  "libsketch_sfft.a"
  "libsketch_sfft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sketch_sfft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
