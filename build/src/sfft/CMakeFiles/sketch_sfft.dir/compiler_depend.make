# Empty compiler generated dependencies file for sketch_sfft.
# This may be replaced when dependencies are built.
