
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sfft/crt_sfft.cc" "src/sfft/CMakeFiles/sketch_sfft.dir/crt_sfft.cc.o" "gcc" "src/sfft/CMakeFiles/sketch_sfft.dir/crt_sfft.cc.o.d"
  "/root/repo/src/sfft/flat_filter.cc" "src/sfft/CMakeFiles/sketch_sfft.dir/flat_filter.cc.o" "gcc" "src/sfft/CMakeFiles/sketch_sfft.dir/flat_filter.cc.o.d"
  "/root/repo/src/sfft/sfft.cc" "src/sfft/CMakeFiles/sketch_sfft.dir/sfft.cc.o" "gcc" "src/sfft/CMakeFiles/sketch_sfft.dir/sfft.cc.o.d"
  "/root/repo/src/sfft/sfft2d.cc" "src/sfft/CMakeFiles/sketch_sfft.dir/sfft2d.cc.o" "gcc" "src/sfft/CMakeFiles/sketch_sfft.dir/sfft2d.cc.o.d"
  "/root/repo/src/sfft/sparse_wht.cc" "src/sfft/CMakeFiles/sketch_sfft.dir/sparse_wht.cc.o" "gcc" "src/sfft/CMakeFiles/sketch_sfft.dir/sparse_wht.cc.o.d"
  "/root/repo/src/sfft/spectrum_utils.cc" "src/sfft/CMakeFiles/sketch_sfft.dir/spectrum_utils.cc.o" "gcc" "src/sfft/CMakeFiles/sketch_sfft.dir/spectrum_utils.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sketch_common.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/sketch_fft.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
