file(REMOVE_RECURSE
  "CMakeFiles/sketch_stream.dir/frequency_oracle.cc.o"
  "CMakeFiles/sketch_stream.dir/frequency_oracle.cc.o.d"
  "CMakeFiles/sketch_stream.dir/generators.cc.o"
  "CMakeFiles/sketch_stream.dir/generators.cc.o.d"
  "CMakeFiles/sketch_stream.dir/traffic_model.cc.o"
  "CMakeFiles/sketch_stream.dir/traffic_model.cc.o.d"
  "libsketch_stream.a"
  "libsketch_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sketch_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
