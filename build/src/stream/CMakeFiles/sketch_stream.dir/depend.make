# Empty dependencies file for sketch_stream.
# This may be replaced when dependencies are built.
