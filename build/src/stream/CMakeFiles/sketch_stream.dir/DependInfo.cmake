
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stream/frequency_oracle.cc" "src/stream/CMakeFiles/sketch_stream.dir/frequency_oracle.cc.o" "gcc" "src/stream/CMakeFiles/sketch_stream.dir/frequency_oracle.cc.o.d"
  "/root/repo/src/stream/generators.cc" "src/stream/CMakeFiles/sketch_stream.dir/generators.cc.o" "gcc" "src/stream/CMakeFiles/sketch_stream.dir/generators.cc.o.d"
  "/root/repo/src/stream/traffic_model.cc" "src/stream/CMakeFiles/sketch_stream.dir/traffic_model.cc.o" "gcc" "src/stream/CMakeFiles/sketch_stream.dir/traffic_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sketch_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
