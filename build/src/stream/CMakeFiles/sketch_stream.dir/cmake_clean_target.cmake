file(REMOVE_RECURSE
  "libsketch_stream.a"
)
