# Empty compiler generated dependencies file for sketch_common.
# This may be replaced when dependencies are built.
