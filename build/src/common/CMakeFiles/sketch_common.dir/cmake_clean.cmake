file(REMOVE_RECURSE
  "CMakeFiles/sketch_common.dir/metrics.cc.o"
  "CMakeFiles/sketch_common.dir/metrics.cc.o.d"
  "CMakeFiles/sketch_common.dir/prng.cc.o"
  "CMakeFiles/sketch_common.dir/prng.cc.o.d"
  "CMakeFiles/sketch_common.dir/zipf.cc.o"
  "CMakeFiles/sketch_common.dir/zipf.cc.o.d"
  "libsketch_common.a"
  "libsketch_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sketch_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
