file(REMOVE_RECURSE
  "libsketch_common.a"
)
