file(REMOVE_RECURSE
  "CMakeFiles/sketch_fft.dir/fft.cc.o"
  "CMakeFiles/sketch_fft.dir/fft.cc.o.d"
  "CMakeFiles/sketch_fft.dir/real_fft.cc.o"
  "CMakeFiles/sketch_fft.dir/real_fft.cc.o.d"
  "libsketch_fft.a"
  "libsketch_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sketch_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
