# Empty dependencies file for sketch_fft.
# This may be replaced when dependencies are built.
