file(REMOVE_RECURSE
  "libsketch_fft.a"
)
