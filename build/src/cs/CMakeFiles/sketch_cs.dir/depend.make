# Empty dependencies file for sketch_cs.
# This may be replaced when dependencies are built.
