file(REMOVE_RECURSE
  "CMakeFiles/sketch_cs.dir/bit_test_recovery.cc.o"
  "CMakeFiles/sketch_cs.dir/bit_test_recovery.cc.o.d"
  "CMakeFiles/sketch_cs.dir/cosamp.cc.o"
  "CMakeFiles/sketch_cs.dir/cosamp.cc.o.d"
  "CMakeFiles/sketch_cs.dir/ensembles.cc.o"
  "CMakeFiles/sketch_cs.dir/ensembles.cc.o.d"
  "CMakeFiles/sketch_cs.dir/hashed_recovery.cc.o"
  "CMakeFiles/sketch_cs.dir/hashed_recovery.cc.o.d"
  "CMakeFiles/sketch_cs.dir/iht.cc.o"
  "CMakeFiles/sketch_cs.dir/iht.cc.o.d"
  "CMakeFiles/sketch_cs.dir/linear_operator.cc.o"
  "CMakeFiles/sketch_cs.dir/linear_operator.cc.o.d"
  "CMakeFiles/sketch_cs.dir/omp.cc.o"
  "CMakeFiles/sketch_cs.dir/omp.cc.o.d"
  "CMakeFiles/sketch_cs.dir/signals.cc.o"
  "CMakeFiles/sketch_cs.dir/signals.cc.o.d"
  "CMakeFiles/sketch_cs.dir/smp.cc.o"
  "CMakeFiles/sketch_cs.dir/smp.cc.o.d"
  "CMakeFiles/sketch_cs.dir/ssmp.cc.o"
  "CMakeFiles/sketch_cs.dir/ssmp.cc.o.d"
  "libsketch_cs.a"
  "libsketch_cs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sketch_cs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
