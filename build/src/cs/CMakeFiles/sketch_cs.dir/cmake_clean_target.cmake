file(REMOVE_RECURSE
  "libsketch_cs.a"
)
