
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cs/bit_test_recovery.cc" "src/cs/CMakeFiles/sketch_cs.dir/bit_test_recovery.cc.o" "gcc" "src/cs/CMakeFiles/sketch_cs.dir/bit_test_recovery.cc.o.d"
  "/root/repo/src/cs/cosamp.cc" "src/cs/CMakeFiles/sketch_cs.dir/cosamp.cc.o" "gcc" "src/cs/CMakeFiles/sketch_cs.dir/cosamp.cc.o.d"
  "/root/repo/src/cs/ensembles.cc" "src/cs/CMakeFiles/sketch_cs.dir/ensembles.cc.o" "gcc" "src/cs/CMakeFiles/sketch_cs.dir/ensembles.cc.o.d"
  "/root/repo/src/cs/hashed_recovery.cc" "src/cs/CMakeFiles/sketch_cs.dir/hashed_recovery.cc.o" "gcc" "src/cs/CMakeFiles/sketch_cs.dir/hashed_recovery.cc.o.d"
  "/root/repo/src/cs/iht.cc" "src/cs/CMakeFiles/sketch_cs.dir/iht.cc.o" "gcc" "src/cs/CMakeFiles/sketch_cs.dir/iht.cc.o.d"
  "/root/repo/src/cs/linear_operator.cc" "src/cs/CMakeFiles/sketch_cs.dir/linear_operator.cc.o" "gcc" "src/cs/CMakeFiles/sketch_cs.dir/linear_operator.cc.o.d"
  "/root/repo/src/cs/omp.cc" "src/cs/CMakeFiles/sketch_cs.dir/omp.cc.o" "gcc" "src/cs/CMakeFiles/sketch_cs.dir/omp.cc.o.d"
  "/root/repo/src/cs/signals.cc" "src/cs/CMakeFiles/sketch_cs.dir/signals.cc.o" "gcc" "src/cs/CMakeFiles/sketch_cs.dir/signals.cc.o.d"
  "/root/repo/src/cs/smp.cc" "src/cs/CMakeFiles/sketch_cs.dir/smp.cc.o" "gcc" "src/cs/CMakeFiles/sketch_cs.dir/smp.cc.o.d"
  "/root/repo/src/cs/ssmp.cc" "src/cs/CMakeFiles/sketch_cs.dir/ssmp.cc.o" "gcc" "src/cs/CMakeFiles/sketch_cs.dir/ssmp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sketch_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/sketch_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/sketch_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
