# Empty compiler generated dependencies file for sketch_hash.
# This may be replaced when dependencies are built.
