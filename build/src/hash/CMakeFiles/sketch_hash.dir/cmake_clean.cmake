file(REMOVE_RECURSE
  "CMakeFiles/sketch_hash.dir/kwise_hash.cc.o"
  "CMakeFiles/sketch_hash.dir/kwise_hash.cc.o.d"
  "CMakeFiles/sketch_hash.dir/tabulation_hash.cc.o"
  "CMakeFiles/sketch_hash.dir/tabulation_hash.cc.o.d"
  "libsketch_hash.a"
  "libsketch_hash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sketch_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
