file(REMOVE_RECURSE
  "libsketch_hash.a"
)
