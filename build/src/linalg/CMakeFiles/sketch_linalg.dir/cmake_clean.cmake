file(REMOVE_RECURSE
  "CMakeFiles/sketch_linalg.dir/csr_matrix.cc.o"
  "CMakeFiles/sketch_linalg.dir/csr_matrix.cc.o.d"
  "CMakeFiles/sketch_linalg.dir/dense_matrix.cc.o"
  "CMakeFiles/sketch_linalg.dir/dense_matrix.cc.o.d"
  "CMakeFiles/sketch_linalg.dir/least_squares.cc.o"
  "CMakeFiles/sketch_linalg.dir/least_squares.cc.o.d"
  "CMakeFiles/sketch_linalg.dir/sparse_vector.cc.o"
  "CMakeFiles/sketch_linalg.dir/sparse_vector.cc.o.d"
  "CMakeFiles/sketch_linalg.dir/symmetric_eigen.cc.o"
  "CMakeFiles/sketch_linalg.dir/symmetric_eigen.cc.o.d"
  "libsketch_linalg.a"
  "libsketch_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sketch_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
