# Empty compiler generated dependencies file for sketch_linalg.
# This may be replaced when dependencies are built.
