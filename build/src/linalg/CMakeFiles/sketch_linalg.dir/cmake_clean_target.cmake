file(REMOVE_RECURSE
  "libsketch_linalg.a"
)
