
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linalg/csr_matrix.cc" "src/linalg/CMakeFiles/sketch_linalg.dir/csr_matrix.cc.o" "gcc" "src/linalg/CMakeFiles/sketch_linalg.dir/csr_matrix.cc.o.d"
  "/root/repo/src/linalg/dense_matrix.cc" "src/linalg/CMakeFiles/sketch_linalg.dir/dense_matrix.cc.o" "gcc" "src/linalg/CMakeFiles/sketch_linalg.dir/dense_matrix.cc.o.d"
  "/root/repo/src/linalg/least_squares.cc" "src/linalg/CMakeFiles/sketch_linalg.dir/least_squares.cc.o" "gcc" "src/linalg/CMakeFiles/sketch_linalg.dir/least_squares.cc.o.d"
  "/root/repo/src/linalg/sparse_vector.cc" "src/linalg/CMakeFiles/sketch_linalg.dir/sparse_vector.cc.o" "gcc" "src/linalg/CMakeFiles/sketch_linalg.dir/sparse_vector.cc.o.d"
  "/root/repo/src/linalg/symmetric_eigen.cc" "src/linalg/CMakeFiles/sketch_linalg.dir/symmetric_eigen.cc.o" "gcc" "src/linalg/CMakeFiles/sketch_linalg.dir/symmetric_eigen.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sketch_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
