file(REMOVE_RECURSE
  "CMakeFiles/spectrum_sensing.dir/spectrum_sensing.cpp.o"
  "CMakeFiles/spectrum_sensing.dir/spectrum_sensing.cpp.o.d"
  "spectrum_sensing"
  "spectrum_sensing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spectrum_sensing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
