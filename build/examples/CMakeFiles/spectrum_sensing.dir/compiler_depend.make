# Empty compiler generated dependencies file for spectrum_sensing.
# This may be replaced when dependencies are built.
