file(REMOVE_RECURSE
  "CMakeFiles/compressed_sensing_demo.dir/compressed_sensing_demo.cpp.o"
  "CMakeFiles/compressed_sensing_demo.dir/compressed_sensing_demo.cpp.o.d"
  "compressed_sensing_demo"
  "compressed_sensing_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compressed_sensing_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
