# Empty dependencies file for compressed_sensing_demo.
# This may be replaced when dependencies are built.
