file(REMOVE_RECURSE
  "CMakeFiles/join_size_estimation.dir/join_size_estimation.cpp.o"
  "CMakeFiles/join_size_estimation.dir/join_size_estimation.cpp.o.d"
  "join_size_estimation"
  "join_size_estimation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/join_size_estimation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
