# Empty dependencies file for join_size_estimation.
# This may be replaced when dependencies are built.
