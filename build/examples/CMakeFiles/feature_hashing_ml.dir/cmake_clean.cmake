file(REMOVE_RECURSE
  "CMakeFiles/feature_hashing_ml.dir/feature_hashing_ml.cpp.o"
  "CMakeFiles/feature_hashing_ml.dir/feature_hashing_ml.cpp.o.d"
  "feature_hashing_ml"
  "feature_hashing_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feature_hashing_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
