# Empty dependencies file for feature_hashing_ml.
# This may be replaced when dependencies are built.
