file(REMOVE_RECURSE
  "CMakeFiles/stream_analytics.dir/stream_analytics.cpp.o"
  "CMakeFiles/stream_analytics.dir/stream_analytics.cpp.o.d"
  "stream_analytics"
  "stream_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stream_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
