# Empty dependencies file for stream_analytics.
# This may be replaced when dependencies are built.
