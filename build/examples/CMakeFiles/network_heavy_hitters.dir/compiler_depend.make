# Empty compiler generated dependencies file for network_heavy_hitters.
# This may be replaced when dependencies are built.
