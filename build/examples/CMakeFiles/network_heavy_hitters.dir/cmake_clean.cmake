file(REMOVE_RECURSE
  "CMakeFiles/network_heavy_hitters.dir/network_heavy_hitters.cpp.o"
  "CMakeFiles/network_heavy_hitters.dir/network_heavy_hitters.cpp.o.d"
  "network_heavy_hitters"
  "network_heavy_hitters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_heavy_hitters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
