# Empty dependencies file for set_reconciliation.
# This may be replaced when dependencies are built.
