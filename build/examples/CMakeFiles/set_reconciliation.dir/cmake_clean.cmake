file(REMOVE_RECURSE
  "CMakeFiles/set_reconciliation.dir/set_reconciliation.cpp.o"
  "CMakeFiles/set_reconciliation.dir/set_reconciliation.cpp.o.d"
  "set_reconciliation"
  "set_reconciliation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/set_reconciliation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
