# Empty dependencies file for bench_sublinear_decode.
# This may be replaced when dependencies are built.
