file(REMOVE_RECURSE
  "CMakeFiles/bench_sublinear_decode.dir/bench_sublinear_decode.cc.o"
  "CMakeFiles/bench_sublinear_decode.dir/bench_sublinear_decode.cc.o.d"
  "bench_sublinear_decode"
  "bench_sublinear_decode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sublinear_decode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
