# Empty compiler generated dependencies file for bench_bloom.
# This may be replaced when dependencies are built.
