file(REMOVE_RECURSE
  "CMakeFiles/bench_bloom.dir/bench_bloom.cc.o"
  "CMakeFiles/bench_bloom.dir/bench_bloom.cc.o.d"
  "bench_bloom"
  "bench_bloom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bloom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
