file(REMOVE_RECURSE
  "CMakeFiles/bench_update_throughput.dir/bench_update_throughput.cc.o"
  "CMakeFiles/bench_update_throughput.dir/bench_update_throughput.cc.o.d"
  "bench_update_throughput"
  "bench_update_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_update_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
