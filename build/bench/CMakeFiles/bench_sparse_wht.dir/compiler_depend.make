# Empty compiler generated dependencies file for bench_sparse_wht.
# This may be replaced when dependencies are built.
