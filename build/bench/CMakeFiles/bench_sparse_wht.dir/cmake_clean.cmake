file(REMOVE_RECURSE
  "CMakeFiles/bench_sparse_wht.dir/bench_sparse_wht.cc.o"
  "CMakeFiles/bench_sparse_wht.dir/bench_sparse_wht.cc.o.d"
  "bench_sparse_wht"
  "bench_sparse_wht.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sparse_wht.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
