# Empty compiler generated dependencies file for bench_sfft_noise.
# This may be replaced when dependencies are built.
