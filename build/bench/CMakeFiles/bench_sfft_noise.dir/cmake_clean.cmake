file(REMOVE_RECURSE
  "CMakeFiles/bench_sfft_noise.dir/bench_sfft_noise.cc.o"
  "CMakeFiles/bench_sfft_noise.dir/bench_sfft_noise.cc.o.d"
  "bench_sfft_noise"
  "bench_sfft_noise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sfft_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
