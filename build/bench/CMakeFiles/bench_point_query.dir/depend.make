# Empty dependencies file for bench_point_query.
# This may be replaced when dependencies are built.
