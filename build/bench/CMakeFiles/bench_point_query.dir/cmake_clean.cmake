file(REMOVE_RECURSE
  "CMakeFiles/bench_point_query.dir/bench_point_query.cc.o"
  "CMakeFiles/bench_point_query.dir/bench_point_query.cc.o.d"
  "bench_point_query"
  "bench_point_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_point_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
