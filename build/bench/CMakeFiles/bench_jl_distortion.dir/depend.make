# Empty dependencies file for bench_jl_distortion.
# This may be replaced when dependencies are built.
