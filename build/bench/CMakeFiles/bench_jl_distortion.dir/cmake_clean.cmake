file(REMOVE_RECURSE
  "CMakeFiles/bench_jl_distortion.dir/bench_jl_distortion.cc.o"
  "CMakeFiles/bench_jl_distortion.dir/bench_jl_distortion.cc.o.d"
  "bench_jl_distortion"
  "bench_jl_distortion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_jl_distortion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
