file(REMOVE_RECURSE
  "CMakeFiles/bench_heavy_hitters.dir/bench_heavy_hitters.cc.o"
  "CMakeFiles/bench_heavy_hitters.dir/bench_heavy_hitters.cc.o.d"
  "bench_heavy_hitters"
  "bench_heavy_hitters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_heavy_hitters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
