# Empty dependencies file for bench_heavy_hitters.
# This may be replaced when dependencies are built.
