file(REMOVE_RECURSE
  "CMakeFiles/bench_sfft.dir/bench_sfft.cc.o"
  "CMakeFiles/bench_sfft.dir/bench_sfft.cc.o.d"
  "bench_sfft"
  "bench_sfft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sfft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
