# Empty compiler generated dependencies file for bench_sfft.
# This may be replaced when dependencies are built.
