file(REMOVE_RECURSE
  "CMakeFiles/bench_sfft2d.dir/bench_sfft2d.cc.o"
  "CMakeFiles/bench_sfft2d.dir/bench_sfft2d.cc.o.d"
  "bench_sfft2d"
  "bench_sfft2d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sfft2d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
