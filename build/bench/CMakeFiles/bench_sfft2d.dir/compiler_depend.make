# Empty compiler generated dependencies file for bench_sfft2d.
# This may be replaced when dependencies are built.
