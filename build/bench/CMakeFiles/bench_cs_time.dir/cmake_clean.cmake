file(REMOVE_RECURSE
  "CMakeFiles/bench_cs_time.dir/bench_cs_time.cc.o"
  "CMakeFiles/bench_cs_time.dir/bench_cs_time.cc.o.d"
  "bench_cs_time"
  "bench_cs_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cs_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
