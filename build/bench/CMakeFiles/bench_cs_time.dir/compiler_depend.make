# Empty compiler generated dependencies file for bench_cs_time.
# This may be replaced when dependencies are built.
