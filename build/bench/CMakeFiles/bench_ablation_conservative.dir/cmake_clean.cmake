file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_conservative.dir/bench_ablation_conservative.cc.o"
  "CMakeFiles/bench_ablation_conservative.dir/bench_ablation_conservative.cc.o.d"
  "bench_ablation_conservative"
  "bench_ablation_conservative.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_conservative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
