# Empty compiler generated dependencies file for bench_ablation_conservative.
# This may be replaced when dependencies are built.
