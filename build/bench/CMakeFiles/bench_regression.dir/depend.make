# Empty dependencies file for bench_regression.
# This may be replaced when dependencies are built.
