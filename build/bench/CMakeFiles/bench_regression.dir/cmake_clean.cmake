file(REMOVE_RECURSE
  "CMakeFiles/bench_regression.dir/bench_regression.cc.o"
  "CMakeFiles/bench_regression.dir/bench_regression.cc.o.d"
  "bench_regression"
  "bench_regression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_regression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
