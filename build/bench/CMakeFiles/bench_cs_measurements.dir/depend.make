# Empty dependencies file for bench_cs_measurements.
# This may be replaced when dependencies are built.
