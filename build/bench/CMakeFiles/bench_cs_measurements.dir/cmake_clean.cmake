file(REMOVE_RECURSE
  "CMakeFiles/bench_cs_measurements.dir/bench_cs_measurements.cc.o"
  "CMakeFiles/bench_cs_measurements.dir/bench_cs_measurements.cc.o.d"
  "bench_cs_measurements"
  "bench_cs_measurements.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cs_measurements.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
