file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_smp.dir/bench_ablation_smp.cc.o"
  "CMakeFiles/bench_ablation_smp.dir/bench_ablation_smp.cc.o.d"
  "bench_ablation_smp"
  "bench_ablation_smp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_smp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
