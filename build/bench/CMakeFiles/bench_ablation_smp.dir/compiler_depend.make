# Empty compiler generated dependencies file for bench_ablation_smp.
# This may be replaced when dependencies are built.
