file(REMOVE_RECURSE
  "CMakeFiles/bench_counter_braids.dir/bench_counter_braids.cc.o"
  "CMakeFiles/bench_counter_braids.dir/bench_counter_braids.cc.o.d"
  "bench_counter_braids"
  "bench_counter_braids.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_counter_braids.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
