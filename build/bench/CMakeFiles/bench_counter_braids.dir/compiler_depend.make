# Empty compiler generated dependencies file for bench_counter_braids.
# This may be replaced when dependencies are built.
