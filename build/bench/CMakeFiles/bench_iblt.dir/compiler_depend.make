# Empty compiler generated dependencies file for bench_iblt.
# This may be replaced when dependencies are built.
