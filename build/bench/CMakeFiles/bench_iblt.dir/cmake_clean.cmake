file(REMOVE_RECURSE
  "CMakeFiles/bench_iblt.dir/bench_iblt.cc.o"
  "CMakeFiles/bench_iblt.dir/bench_iblt.cc.o.d"
  "bench_iblt"
  "bench_iblt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_iblt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
