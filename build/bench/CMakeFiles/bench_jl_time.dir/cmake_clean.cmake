file(REMOVE_RECURSE
  "CMakeFiles/bench_jl_time.dir/bench_jl_time.cc.o"
  "CMakeFiles/bench_jl_time.dir/bench_jl_time.cc.o.d"
  "bench_jl_time"
  "bench_jl_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_jl_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
