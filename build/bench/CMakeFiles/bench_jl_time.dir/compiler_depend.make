# Empty compiler generated dependencies file for bench_jl_time.
# This may be replaced when dependencies are built.
